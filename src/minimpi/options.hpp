// Runtime configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "perfmodel/machine.hpp"

namespace dipdc::minimpi {

/// Which transport carries envelope frames between ranks (see
/// minimpi/backend.hpp for the seam itself).
///
///  - kThreads: ranks are threads in one address space and envelopes are
///    handed across by pointer — the seed behaviour, zero overhead.
///  - kShm: every envelope is serialized into a length-prefixed frame and
///    round-trips through shared-memory rings serviced by a forked router
///    *process*, forcing true payload serialization across an address-space
///    boundary.
///  - kTcp: frames round-trip through loopback TCP sockets pumped by a
///    nonblocking relay loop, pushing every payload through the kernel
///    network stack.
///
/// Simulated results are bit-identical across backends: the simulated
/// timing fields travel inside the frame, and matching/ordering stay above
/// the seam.  Only the real-world transport of the bytes changes.
enum class BackendKind { kThreads, kShm, kTcp };

struct BackendOptions {
  BackendKind kind = BackendKind::kThreads;

  /// Shared-memory backend: ring capacity per rank per direction.  Frames
  /// larger than the ring stream through it in chunks, so this bounds
  /// memory, not message size.
  std::size_t shm_ring_bytes = 1 << 20;

  /// TCP backend: address the relay listens on.  Loopback by default; a
  /// routable address is the first step towards ranks on other machines.
  std::string tcp_host = "127.0.0.1";
  /// TCP backend: relay port; 0 picks an ephemeral port (concurrent worlds
  /// never collide).
  std::uint16_t tcp_port = 0;
};

/// Deterministic fault-injection plan.  Faults are drawn from per-rank
/// xoshiro256** streams derived from `seed`, so the same (plan, seed,
/// program) triple always injects the identical fault sequence — runs are
/// reproducible bit-for-bit, which is what makes injected failures
/// debuggable and testable.  With the default plan (all probabilities zero,
/// no kill) the transport takes no extra branches and draws nothing, so
/// fault-free runs stay bit-identical to a build without this subsystem.
///
/// Only *user-level* point-to-point messages (Send/Isend/Sendrecv and the
/// reliable-delivery frames built on them) are injectable; collective-
/// internal traffic and reliable-delivery acknowledgements travel on the
/// lossless control channel.  A dropped message is charged its send
/// overhead and then vanishes (fire-and-forget loss, even for
/// rendezvous-sized payloads); a duplicated message is delivered twice
/// (at-least-once semantics); a delayed message arrives `delay_seconds`
/// later in simulated time.
struct FaultOptions {
  /// Seed for the per-rank fault streams (stream r = make_stream(seed, r)).
  std::uint64_t seed = 1;

  /// Probability that an outgoing user p2p message is dropped.
  double drop_prob = 0.0;
  /// Probability that an outgoing user p2p message is delivered twice.
  double dup_prob = 0.0;
  /// Probability that an outgoing user p2p message is delayed.
  double delay_prob = 0.0;
  /// Simulated delivery delay applied to delayed messages.
  double delay_seconds = 1e-5;

  /// World rank to kill (-1 = nobody).
  int kill_rank = -1;
  /// The killed rank dies at the start of its Nth user primitive call
  /// (1-based); 0 disables the kill even when kill_rank is set.
  std::uint64_t kill_at_call = 0;

  /// Any message-level fault armed?
  [[nodiscard]] bool injects() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0;
  }
  /// Rank-kill armed?
  [[nodiscard]] bool kills() const {
    return kill_rank >= 0 && kill_at_call > 0;
  }
  [[nodiscard]] bool enabled() const { return injects() || kills(); }
};

/// Tuning for the acknowledged-delivery layer (Comm::send_reliable /
/// recv_reliable).  The acknowledgement timeout is not a wall-clock timer:
/// it fires exactly when the runtime proves that no rank can make progress
/// (the same machinery as deadlock detection), so retry sequences are as
/// deterministic as the fault plan that caused them.  Reliable delivery
/// therefore requires RuntimeOptions::detect_deadlock to stay enabled.
struct ReliableOptions {
  /// Resend attempts after the first transmission; exhausting the budget
  /// throws MpiError from send_reliable.
  int max_retries = 8;
  /// Simulated seconds charged to the sender's clock per expired
  /// acknowledgement timeout (models the retransmission timer).
  double timeout_seconds = 1e-3;
};

/// Transport fast-path tuning.  None of these settings change simulated
/// results — they only control how much real-world work (allocation,
/// memcpy) the transport performs per message, and are toggleable exactly
/// so tests can prove sim-neutrality by comparing runs bit-for-bit.
struct TransportOptions {
  /// Payloads of at most this many bytes are stored inline in the pooled
  /// envelope (no payload buffer at all).  Clamped to
  /// detail::Payload::kMaxInline (256).
  std::size_t inline_threshold = 256;

  /// Recycle payload buffers and envelopes through freelists instead of
  /// allocating per message.
  bool pooling = true;

  /// Allow zero-copy payload handoff: blocking rendezvous senders lend
  /// their buffer to the envelope, and collective-internal receivers adopt
  /// shared payload buffers instead of copying them out.
  bool zero_copy = true;
};

/// Per-collective algorithm override.  kAuto picks by communicator size
/// and payload volume under the simulator's cost model (see the thresholds
/// in CollectiveOptions); the specific values force one algorithm where it
/// applies and fall back to the classic one where it does not.
enum class CollectiveAlgorithm {
  kAuto,
  kClassic,            // the seed algorithms (linear roots, reduce+bcast)
  kTree,               // binomial tree (scatter/scatterv/gather/gatherv)
  kRecursiveDoubling,  // allreduce
  kRing,               // allreduce (Rabenseifner), allgather
};

struct CollectiveOptions {
  CollectiveAlgorithm scatter = CollectiveAlgorithm::kAuto;  // + scatterv
  CollectiveAlgorithm gather = CollectiveAlgorithm::kAuto;   // + gatherv
  CollectiveAlgorithm allreduce = CollectiveAlgorithm::kAuto;
  CollectiveAlgorithm allgather = CollectiveAlgorithm::kAuto;

  /// kAuto picks binomial-tree scatter/gather only at or above this rank
  /// count: under this simulator's LogGP model an eager sender pays only
  /// its injection overhead per message, so the linear root loop is
  /// sim-optimal until (p-1)*o outweighs the extra tree latency depth.
  int tree_rank_threshold = 48;

  /// kAuto allreduce: payloads of at least this many bytes use recursive
  /// doubling; smaller ones keep the seed reduce+bcast so that existing
  /// module timings stay bit-identical.
  std::size_t allreduce_rd_threshold = 512;
  /// kAuto allreduce: payloads of at least this many bytes (with p >= 4)
  /// use Rabenseifner reduce-scatter + ring allgather.
  std::size_t allreduce_ring_threshold = 64 * 1024;
  /// kAuto allgather: total gathered volume of at least this many bytes
  /// (with p >= 4) uses the ring algorithm.
  std::size_t allgather_ring_threshold = 64 * 1024;
};

struct RuntimeOptions {
  /// Transport backend carrying envelope frames between ranks.  The
  /// default (threads) is bit-identical to builds predating the seam.
  BackendOptions backend{};

  /// Messages of at most this many payload bytes are sent eagerly: the
  /// sender buffers and returns immediately (like MPI's eager protocol).
  /// Larger messages use a rendezvous: the sender blocks until the receiver
  /// has matched the message.  Set to 0 to force rendezvous everywhere —
  /// that is how Module 1 demonstrates that blocking sends can deadlock.
  std::size_t eager_threshold = 64 * 1024;

  /// When every live rank is blocked and no pending operation can complete,
  /// throw DeadlockError in all of them instead of hanging.
  bool detect_deadlock = true;

  /// Machine model for simulated time.  The default models a single node
  /// whose core count equals the rank count; experiments override this with
  /// multi-node configurations.
  perfmodel::MachineConfig machine{};

  /// Rank-to-node placement under `machine`.
  perfmodel::Placement placement{};

  /// Record a TraceEvent for every user-level operation, plus simulated
  /// compute/idle spans and module phases (see trace.hpp); RunResult::trace
  /// carries the merged log.
  bool record_trace = false;

  /// Additionally stamp trace events with wall-clock times (real seconds
  /// since the world started).  Off by default: wall stamps vary run to
  /// run, and leaving them zeroed keeps exported traces bit-identical for
  /// deterministic programs.  Requires record_trace.
  bool trace_wall_time = false;

  /// Record per-channel user p2p traffic (bytes/messages per directed
  /// (source, destination) world-rank pair); RunResult::channels carries the
  /// merged table.  This is the program-introspection hook the conformance
  /// fuzzer checks "bytes sent == bytes received per channel" against.  Off
  /// by default: fault-free runs stay bit-identical to earlier builds.
  bool record_channels = false;

  /// Transport fast-path tuning (sim-neutral).
  TransportOptions transport{};

  /// Collective algorithm selection (changes simulated message patterns).
  CollectiveOptions collectives{};

  /// Deterministic fault injection (disabled by default; when disabled the
  /// transport behaves bit-identically to a fault-free build).
  FaultOptions faults{};

  /// Acknowledged-delivery (send_reliable) retry/timeout tuning.
  ReliableOptions reliable{};
};

}  // namespace dipdc::minimpi
