// Runtime configuration.
#pragma once

#include <cstddef>

#include "perfmodel/machine.hpp"

namespace dipdc::minimpi {

/// Transport fast-path tuning.  None of these settings change simulated
/// results — they only control how much real-world work (allocation,
/// memcpy) the transport performs per message, and are toggleable exactly
/// so tests can prove sim-neutrality by comparing runs bit-for-bit.
struct TransportOptions {
  /// Payloads of at most this many bytes are stored inline in the pooled
  /// envelope (no payload buffer at all).  Clamped to
  /// detail::Payload::kMaxInline (256).
  std::size_t inline_threshold = 256;

  /// Recycle payload buffers and envelopes through freelists instead of
  /// allocating per message.
  bool pooling = true;

  /// Allow zero-copy payload handoff: blocking rendezvous senders lend
  /// their buffer to the envelope, and collective-internal receivers adopt
  /// shared payload buffers instead of copying them out.
  bool zero_copy = true;
};

/// Per-collective algorithm override.  kAuto picks by communicator size
/// and payload volume under the simulator's cost model (see the thresholds
/// in CollectiveOptions); the specific values force one algorithm where it
/// applies and fall back to the classic one where it does not.
enum class CollectiveAlgorithm {
  kAuto,
  kClassic,            // the seed algorithms (linear roots, reduce+bcast)
  kTree,               // binomial tree (scatter/scatterv/gather/gatherv)
  kRecursiveDoubling,  // allreduce
  kRing,               // allreduce (Rabenseifner), allgather
};

struct CollectiveOptions {
  CollectiveAlgorithm scatter = CollectiveAlgorithm::kAuto;  // + scatterv
  CollectiveAlgorithm gather = CollectiveAlgorithm::kAuto;   // + gatherv
  CollectiveAlgorithm allreduce = CollectiveAlgorithm::kAuto;
  CollectiveAlgorithm allgather = CollectiveAlgorithm::kAuto;

  /// kAuto picks binomial-tree scatter/gather only at or above this rank
  /// count: under this simulator's LogGP model an eager sender pays only
  /// its injection overhead per message, so the linear root loop is
  /// sim-optimal until (p-1)*o outweighs the extra tree latency depth.
  int tree_rank_threshold = 48;

  /// kAuto allreduce: payloads of at least this many bytes use recursive
  /// doubling; smaller ones keep the seed reduce+bcast so that existing
  /// module timings stay bit-identical.
  std::size_t allreduce_rd_threshold = 512;
  /// kAuto allreduce: payloads of at least this many bytes (with p >= 4)
  /// use Rabenseifner reduce-scatter + ring allgather.
  std::size_t allreduce_ring_threshold = 64 * 1024;
  /// kAuto allgather: total gathered volume of at least this many bytes
  /// (with p >= 4) uses the ring algorithm.
  std::size_t allgather_ring_threshold = 64 * 1024;
};

struct RuntimeOptions {
  /// Messages of at most this many payload bytes are sent eagerly: the
  /// sender buffers and returns immediately (like MPI's eager protocol).
  /// Larger messages use a rendezvous: the sender blocks until the receiver
  /// has matched the message.  Set to 0 to force rendezvous everywhere —
  /// that is how Module 1 demonstrates that blocking sends can deadlock.
  std::size_t eager_threshold = 64 * 1024;

  /// When every live rank is blocked and no pending operation can complete,
  /// throw DeadlockError in all of them instead of hanging.
  bool detect_deadlock = true;

  /// Machine model for simulated time.  The default models a single node
  /// whose core count equals the rank count; experiments override this with
  /// multi-node configurations.
  perfmodel::MachineConfig machine{};

  /// Rank-to-node placement under `machine`.
  perfmodel::Placement placement{};

  /// Record a TraceEvent for every user-level operation (see trace.hpp);
  /// RunResult::trace carries the merged log.
  bool record_trace = false;

  /// Transport fast-path tuning (sim-neutral).
  TransportOptions transport{};

  /// Collective algorithm selection (changes simulated message patterns).
  CollectiveOptions collectives{};
};

}  // namespace dipdc::minimpi
