// Runtime configuration.
#pragma once

#include <cstddef>

#include "perfmodel/machine.hpp"

namespace dipdc::minimpi {

struct RuntimeOptions {
  /// Messages of at most this many payload bytes are sent eagerly: the
  /// sender buffers and returns immediately (like MPI's eager protocol).
  /// Larger messages use a rendezvous: the sender blocks until the receiver
  /// has matched the message.  Set to 0 to force rendezvous everywhere —
  /// that is how Module 1 demonstrates that blocking sends can deadlock.
  std::size_t eager_threshold = 64 * 1024;

  /// When every live rank is blocked and no pending operation can complete,
  /// throw DeadlockError in all of them instead of hanging.
  bool detect_deadlock = true;

  /// Machine model for simulated time.  The default models a single node
  /// whose core count equals the rank count; experiments override this with
  /// multi-node configurations.
  perfmodel::MachineConfig machine{};

  /// Rank-to-node placement under `machine`.
  perfmodel::Placement placement{};

  /// Record a TraceEvent for every user-level operation (see trace.hpp);
  /// RunResult::trace carries the merged log.
  bool record_trace = false;
};

}  // namespace dipdc::minimpi
