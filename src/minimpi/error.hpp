// Errors raised by the minimpi runtime.
#pragma once

#include "support/error.hpp"

namespace dipdc::minimpi {

/// Base class for all minimpi errors (bad arguments, truncation, ...).
class MpiError : public support::Error {
 public:
  using support::Error::Error;
};

/// Thrown in *every* blocked rank when the runtime proves that no rank can
/// make progress (e.g. a ring of rendezvous sends — the deadlock scenario
/// Module 1 teaches).  The message names each blocked rank and the
/// operation it is stuck in.
class DeadlockError : public MpiError {
 public:
  using MpiError::MpiError;
};

/// Thrown in blocked ranks when another rank aborted with an exception, so
/// that all threads unwind and join instead of hanging.
class AbortError : public MpiError {
 public:
  using MpiError::MpiError;
};

/// Thrown when a rank dies (fault-injection kill): the dying rank throws it
/// from the primitive it was killed in, and every surviving rank that can
/// no longer make progress receives it instead of hanging.  The message
/// names the dead rank.  Subclasses AbortError because survivors are
/// unblocked by another rank's failure, exactly like the abort path.
class RankFailedError : public AbortError {
 public:
  using AbortError::AbortError;
};

}  // namespace dipdc::minimpi
