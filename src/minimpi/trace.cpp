#include "minimpi/trace.hpp"

#include "minimpi/runtime.hpp"
#include "obs/ascii.hpp"

namespace dipdc::minimpi {

namespace {

char glyph_of(const TraceEvent& e) {
  if (e.op < 0) return '\0';  // compute/idle/phase spans render as '.'
  switch (static_cast<Primitive>(e.op)) {
    case Primitive::kSend: return 's';
    case Primitive::kIsend: return 'S';
    case Primitive::kRecv: return 'r';
    case Primitive::kIrecv: return 'R';
    case Primitive::kWait: return 'w';
    case Primitive::kProbe: return 'p';
    default: return 'C';  // collectives
  }
}

}  // namespace

obs::Category primitive_category(Primitive p) {
  switch (p) {
    case Primitive::kSend:
    case Primitive::kRecv:
    case Primitive::kIsend:
    case Primitive::kIrecv:
    case Primitive::kSendrecv:
    case Primitive::kSendReliable:
    case Primitive::kRecvReliable:
      return obs::Category::kP2P;
    case Primitive::kWait:
      return obs::Category::kWait;
    case Primitive::kProbe:
      return obs::Category::kProbe;
    default:
      return obs::Category::kCollective;
  }
}

obs::Trace make_trace(const RunResult& result) {
  obs::Trace trace;
  trace.nranks = static_cast<int>(result.sim_times.size());
  trace.events = result.trace;
  return trace;
}

std::string render_timeline(const std::vector<TraceEvent>& events,
                            int nranks, double t_max, int width) {
  return obs::render_timeline(
      events, nranks, t_max, width, glyph_of,
      "   (s/S send, r/R recv, w wait, p probe, C collective, . "
      "compute/idle)");
}

std::string render_log(const std::vector<TraceEvent>& events,
                       std::size_t max_events) {
  return obs::render_log(events, max_events);
}

}  // namespace dipdc::minimpi
