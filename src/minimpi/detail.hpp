// Internal message-transport structures.  Nothing in this header is part of
// the public API; it is included by comm.hpp only because Request hands out
// a shared handle to a RequestState.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "minimpi/stats.hpp"
#include "minimpi/trace.hpp"
#include "minimpi/types.hpp"

namespace dipdc::minimpi::detail {

/// One in-flight message.  Created by the sender under the runtime lock;
/// consumed by the receiver (or matched against a posted receive by the
/// sending thread itself).
struct Envelope {
  int source = 0;   // sender's rank *within the communicator* (context)
  int dest = 0;     // destination *world* rank (mailbox index)
  int tag = 0;
  int context = 0;  // communicator id: 0 = world, >0 = split comms
  std::vector<std::byte> payload;
  bool rendezvous = false;  // sender blocks until matched
  bool matched = false;     // receiver has consumed the payload
  bool internal = false;    // collective-internal traffic
  /// Simulated time at which the head of the message reaches the
  /// destination (sender clock at send + latency).
  double arrival_head = 0.0;
  /// Payload serialization time at the destination link (bytes/bandwidth).
  /// The receiver ingests messages one at a time, so a rank that is sent
  /// many messages at once pays for their combined volume.
  double byte_time = 0.0;
  /// Receiver clock immediately after the matching receive; a rendezvous
  /// sender synchronises its own clock to this value.
  double completion_time = 0.0;
};

/// State behind a Request handle: a posted non-blocking receive, or the
/// sender side of an Isend.
struct RequestState {
  enum class Kind { kSend, kRecv };
  Kind kind = Kind::kRecv;

  bool done = false;
  bool consumed = false;  // wait()/test() already accounted for completion
  Status status{};
  double completion_time = 0.0;
  std::string error;  // non-empty => wait() throws MpiError

  // Posted-receive fields.
  std::byte* buffer = nullptr;
  std::size_t capacity = 0;
  int source_filter = kAnySource;
  int tag_filter = kAnyTag;
  int context = 0;
  bool internal = false;
  double post_time = 0.0;

  // Send fields.
  std::shared_ptr<Envelope> envelope;
};

/// Does envelope `e` satisfy posted-receive (or blocking-receive) filters?
inline bool filters_match(int source_filter, int tag_filter, int context,
                          bool internal, const Envelope& e) {
  if (e.context != context) return false;
  if (e.internal != internal) return false;
  if (source_filter != kAnySource && source_filter != e.source) return false;
  if (tag_filter != kAnyTag && tag_filter != e.tag) return false;
  return true;
}

/// Per-world-rank simulation state, shared by every communicator the rank
/// participates in (the world communicator and any split() descendants).
struct RankState {
  double clock = 0.0;
  CommStats stats{};
  std::vector<TraceEvent> trace;  // populated when record_trace is on
};

/// Per-rank mailbox: messages not yet matched by a receive, and receives
/// not yet matched by a message.
struct Mailbox {
  std::deque<std::shared_ptr<Envelope>> unexpected;
  std::deque<std::shared_ptr<RequestState>> posted;
  /// Simulated time until which this rank's ingress link is occupied by
  /// previously received payloads (receiver-side serialization).
  double link_busy_until = 0.0;
};

}  // namespace dipdc::minimpi::detail
