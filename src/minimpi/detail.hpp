// Internal message-transport structures.  Nothing in this header is part of
// the public API; it is included by comm.hpp only because Request hands out
// a shared handle to a RequestState.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "minimpi/pool.hpp"
#include "minimpi/stats.hpp"
#include "minimpi/trace.hpp"
#include "minimpi/types.hpp"
#include "support/rng.hpp"

namespace dipdc::minimpi {
class Comm;  // CollectiveState::finish runs against the completing Comm
}  // namespace dipdc::minimpi

namespace dipdc::minimpi::detail {

/// Message payload with three storage strategies:
///  - inline: small messages live in a fixed in-envelope array (no heap
///    allocation on the eager fast path);
///  - heap: a shared, pooled buffer (possibly a sub-range view of a larger
///    buffer), letting receivers adopt the bytes without copying and
///    letting collectives forward one buffer through many hops;
///  - borrowed: a raw span of the sender's memory, used only for blocking
///    rendezvous sends where the sender provably stays alive (blocked)
///    until the receiver has consumed the bytes.
class Payload {
 public:
  static constexpr std::size_t kMaxInline = 256;

  Payload() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::byte* data() const {
    switch (storage_) {
      case Storage::kInline:
        return inline_.data();
      case Storage::kHeap:
        return heap_->data() + offset_;
      case Storage::kBorrowed:
        return borrowed_;
      case Storage::kEmpty:
        break;
    }
    return nullptr;
  }
  [[nodiscard]] std::span<const std::byte> view() const {
    return {data(), size_};
  }
  void copy_to(std::byte* dst) const {
    if (size_ != 0) std::memcpy(dst, data(), size_);
  }

  /// True when the bytes live in a shared heap buffer that a receiver can
  /// adopt (refcount) instead of copying.
  [[nodiscard]] bool shareable() const { return storage_ == Storage::kHeap; }
  /// True when the bytes are a raw span of another rank's stack/heap — only
  /// valid while that rank stays blocked, and never safe to carry across an
  /// address-space boundary (Runtime::transport_envelope guards on this).
  [[nodiscard]] bool is_borrowed() const {
    return storage_ == Storage::kBorrowed;
  }
  [[nodiscard]] const Buffer& buffer() const { return heap_; }
  [[nodiscard]] std::size_t buffer_offset() const { return offset_; }
  /// The shared heap range as a StagedBuffer (shareable() only).
  [[nodiscard]] StagedBuffer share() const {
    return StagedBuffer{heap_, offset_, size_};
  }

  static Payload inline_copy(std::span<const std::byte> src) {
    Payload p;
    if (src.empty()) return p;
    p.storage_ = Storage::kInline;
    p.size_ = src.size();
    std::memcpy(p.inline_.data(), src.data(), src.size());
    return p;
  }
  /// Copies `src` into `buf` (which must hold at least src.size() bytes).
  static Payload owned(Buffer buf, std::span<const std::byte> src) {
    Payload p;
    p.storage_ = Storage::kHeap;
    p.size_ = src.size();
    p.heap_ = std::move(buf);
    if (!src.empty()) std::memcpy(p.heap_->data(), src.data(), src.size());
    return p;
  }
  /// Shares an existing buffer range without copying.
  static Payload shared_view(const StagedBuffer& sb) {
    Payload p;
    p.storage_ = Storage::kHeap;
    p.size_ = sb.len;
    p.offset_ = sb.offset;
    p.heap_ = sb.storage;
    return p;
  }
  static Payload borrowed_from(std::span<const std::byte> src) {
    Payload p;
    p.storage_ = Storage::kBorrowed;
    p.size_ = src.size();
    p.borrowed_ = src.data();
    return p;
  }

  void reset() {
    storage_ = Storage::kEmpty;
    size_ = 0;
    offset_ = 0;
    borrowed_ = nullptr;
    heap_.reset();
  }

 private:
  enum class Storage : std::uint8_t { kEmpty, kInline, kHeap, kBorrowed };

  Storage storage_ = Storage::kEmpty;
  std::size_t size_ = 0;
  std::size_t offset_ = 0;
  const std::byte* borrowed_ = nullptr;
  Buffer heap_;
  std::array<std::byte, kMaxInline> inline_;
};

/// One in-flight message.  Created by the sender under the runtime lock;
/// consumed by the receiver (or matched against a posted receive by the
/// sending thread itself).
struct Envelope {
  int source = 0;     // sender's rank *within the communicator* (context)
  int src_world = 0;  // sender's world rank (for channel accounting)
  int dest = 0;       // destination *world* rank (mailbox index)
  int tag = 0;
  int context = 0;  // communicator id: 0 = world, >0 = split comms
  Payload payload;
  bool rendezvous = false;  // sender blocks until matched
  bool matched = false;     // receiver has consumed the payload
  bool internal = false;    // collective-internal traffic
  /// A receiver popped this envelope and is copying the payload out
  /// without holding the runtime lock; `matched` follows shortly.  An
  /// unwinding sender must wait for the flag to clear before it may free a
  /// borrowed payload.
  bool consume_in_flight = false;
  /// Mailbox arrival order, stamped by UnexpectedQueue::push (wildcard-tag
  /// receives must match the earliest arrival across all tag buckets).
  std::uint64_t seq = 0;
  /// Observability message-edge id (obs::Recorder::alloc_seq), stamped by
  /// the sender when tracing is on; 0 otherwise.  The matching receive
  /// event records it as seq_in, linking the send/recv pair in exported
  /// traces and the critical-path graph.
  std::uint64_t trace_seq = 0;
  /// Simulated time at which the head of the message reaches the
  /// destination (sender clock at send + latency).
  double arrival_head = 0.0;
  /// Payload serialization time at the destination link (bytes/bandwidth).
  /// The receiver ingests messages one at a time, so a rank that is sent
  /// many messages at once pays for their combined volume.
  double byte_time = 0.0;
  /// Receiver clock immediately after the matching receive; a rendezvous
  /// sender synchronises its own clock to this value.
  double completion_time = 0.0;

  void reset() {
    payload.reset();
    rendezvous = matched = internal = consume_in_flight = false;
    src_world = 0;
    seq = 0;
    trace_seq = 0;
    arrival_head = byte_time = completion_time = 0.0;
  }
};

/// State behind a Request handle: a posted non-blocking receive, or the
/// sender side of an Isend.
struct RequestState {
  enum class Kind { kSend, kRecv };
  Kind kind = Kind::kRecv;

  bool done = false;
  bool consumed = false;  // wait()/test() already accounted for completion
  Status status{};
  int src_world = 0;  // world rank behind status.source (channel accounting)
  double completion_time = 0.0;
  /// Observability edge id of the matched message (see Envelope::trace_seq);
  /// consumed by the completing receive's trace event.
  std::uint64_t trace_seq = 0;
  std::string error;  // non-empty => wait() throws MpiError

  // Posted-receive fields.
  std::byte* buffer = nullptr;
  std::size_t capacity = 0;
  int source_filter = kAnySource;
  int tag_filter = kAnyTag;
  int context = 0;
  bool internal = false;
  double post_time = 0.0;
  /// A sender matched this request and is copying the payload into
  /// `buffer` without holding the runtime lock; `done` follows shortly.
  /// An unwinding receiver must wait for the flag to clear before its
  /// buffer may go out of scope.
  bool copy_in_flight = false;

  // Staged-receive fields (collective-internal zero-copy path): when
  // `want_staged`, the matching sender parks the payload here — a shared
  // view when the payload is a heap buffer and zero-copy is on, a pooled
  // copy otherwise — instead of copying into `buffer`.
  bool want_staged = false;
  bool staged_shared = false;  // true when adopted without a copy
  StagedBuffer staged;

  // Send fields.
  std::shared_ptr<Envelope> envelope;
};

/// State behind a nonblocking-collective Request (ibcast / ireduce /
/// iallreduce / iallgatherv).  A flat (star) schedule decomposed into three
/// parts, all created at issue time:
///
///  - `subs`: sub-operations posted immediately — eager internal isends
///    (complete at post) and posted internal irecvs (complete at delivery,
///    which is what buys compute/communication overlap);
///  - `ingests`: root-side fan-in messages received *lazily* at completion
///    time, in list order.  They arrive as unexpected internal messages
///    while the root computes; deferring the receive keeps the simulated
///    ingress-link accounting in a receiver-chosen, deterministic order
///    (posting p-1 concurrent irecvs would make the clocks depend on the
///    real-time arrival schedule);
///  - `finish`: deferred local work run once every sub completed — performs
///    the lazy ingestion (blocking receives that fast-path because test()/
///    wait_any() only declare completability once every ingest is queued),
///    combines/copies out, and may post eager follow-up sends.  It must
///    never block on traffic outside `ingests`, and is cleared only after
///    it ran to completion so a wait after RankFailedError rethrows instead
///    of silently succeeding.
struct CollectiveState {
  std::vector<std::shared_ptr<RequestState>> subs;
  /// subs[0..completed) have been waited (clocks adopted).
  std::size_t completed = 0;

  struct Ingest {
    int source = 0;  // comm rank
    int tag = 0;     // collective-internal tag
  };
  std::vector<Ingest> ingests;

  std::function<void(Comm&)> finish;
  bool done = false;
  Status status{};  // collectives carry no source/tag/bytes
};

/// Does envelope `e` satisfy posted-receive (or blocking-receive) filters?
inline bool filters_match(int source_filter, int tag_filter, int context,
                          bool internal, const Envelope& e) {
  if (e.context != context) return false;
  if (e.internal != internal) return false;
  if (source_filter != kAnySource && source_filter != e.source) return false;
  if (tag_filter != kAnyTag && tag_filter != e.tag) return false;
  return true;
}

/// Wire framing for the acknowledged-delivery protocol: send_reliable
/// prepends this header to the user payload, and acknowledgements carry it
/// alone.  The sequence number is per (sender, receiver) world-rank pair
/// and strictly increasing, so a receiver filters retransmission/injection
/// duplicates with a single high-water mark (the channel is FIFO).
struct ReliableHeader {
  std::uint64_t seq = 0;
};

/// Tag of reliable-delivery acknowledgements.  ACKs travel as
/// collective-internal ("control channel") messages so the fault injector
/// never touches them; collectives consume strictly negative internal
/// tags, so any positive constant is collision-free.
inline constexpr int kReliableAckTag = 0x7ACC;

/// Directed per-channel traffic tally (RuntimeOptions::record_channels).
struct ChannelCount {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

/// One open Comm::phase_begin frame (record_trace only).
struct PhaseFrame {
  std::string_view name;
  double sim_start = 0.0;
  double wall_start = 0.0;
};

/// Per-world-rank simulation state, shared by every communicator the rank
/// participates in (the world communicator and any split() descendants).
/// The fault/reliable fields are touched only by the owning rank's thread.
struct RankState {
  double clock = 0.0;
  CommStats stats{};

  /// Observability bookkeeping (all zero / empty unless record_trace).
  /// The last message edge this rank put on / took off the wire; the
  /// enclosing user operation's trace event consumes (and clears) them.
  std::uint64_t last_tx_seq = 0;
  std::uint64_t last_rx_seq = 0;
  /// Open phase_begin frames (LIFO).
  std::vector<PhaseFrame> phase_stack;

  /// User p2p traffic per peer world rank (record_channels only): what this
  /// rank put on the wire towards `dest`, and what it ingested from `src`.
  /// Sent and received sides are tallied independently so the fuzzer can
  /// assert they agree channel by channel.
  std::unordered_map<int, ChannelCount> channel_sent;      // key: dest world
  std::unordered_map<int, ChannelCount> channel_received;  // key: src world

  /// Serialization scratch for the backend seam, reused across sends so
  /// frame buffers amortise like the envelope pool.  Touched only by the
  /// owning rank's thread, outside the runtime lock.
  std::vector<std::byte> backend_tx_frame;
  std::vector<std::byte> backend_rx_frame;

  /// Per-rank fault stream (seeded by Runtime from FaultOptions::seed).
  support::Xoshiro256 fault_rng{0};
  /// User primitive calls so far; drives FaultOptions::kill_at_call.
  std::uint64_t primitive_calls = 0;
  /// send_reliable sequence numbers, per destination world rank.
  std::unordered_map<int, std::uint64_t> reliable_next_seq;
  /// Highest sequence delivered by recv_reliable, per source world rank.
  std::unordered_map<int, std::uint64_t> reliable_delivered_seq;
};

/// Unexpected-message queue indexed by (context, tag) so exact-tag receives
/// probe one bucket instead of scanning every queued message.  Arrival
/// order across buckets is preserved through per-envelope sequence numbers:
/// wildcard-tag receives take the lowest sequence number among matching
/// heads, which is exactly the arrival-order semantics of a single FIFO.
struct UnexpectedQueue {
  using Queue = std::deque<std::shared_ptr<Envelope>>;

  std::unordered_map<std::uint64_t, Queue> buckets;
  std::uint64_t next_seq = 0;

  static std::uint64_t key(int context, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(context))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  /// Handle to a matched envelope; valid until the queue is next modified.
  struct Match {
    Queue* queue = nullptr;
    std::size_t index = 0;
    std::uint64_t bucket_key = 0;

    [[nodiscard]] const std::shared_ptr<Envelope>& handle() const {
      return (*queue)[index];
    }
  };

  void push(const std::shared_ptr<Envelope>& env) {
    env->seq = next_seq++;
    buckets[key(env->context, env->tag)].push_back(env);
  }

  /// Earliest-arrival envelope matching the filters.
  [[nodiscard]] std::optional<Match> find(int source_filter, int tag_filter,
                                          int context, bool internal) {
    if (tag_filter != kAnyTag) {
      const std::uint64_t k = key(context, tag_filter);
      auto it = buckets.find(k);
      if (it == buckets.end()) return std::nullopt;
      Queue& q = it->second;
      for (std::size_t i = 0; i < q.size(); ++i) {
        if (filters_match(source_filter, tag_filter, context, internal,
                          *q[i])) {
          return Match{&q, i, k};
        }
      }
      return std::nullopt;
    }
    // Wildcard tag: first matching entry of each bucket is that bucket's
    // earliest candidate; pick the globally earliest arrival.
    std::optional<Match> best;
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (auto& [k, q] : buckets) {
      if (static_cast<int>(static_cast<std::int32_t>(k >> 32)) != context) {
        continue;
      }
      for (std::size_t i = 0; i < q.size(); ++i) {
        if (!filters_match(source_filter, tag_filter, context, internal,
                           *q[i])) {
          continue;
        }
#ifdef DIPDC_MUTATE_WILDCARD_ORDER
        // Planted bug (fuzzer-validation builds only, -DDIPDC_MUTATION=
        // wildcard-order): prefer the LATEST arrival among bucket heads,
        // violating the FIFO semantics of wildcard-tag matching.
        if (!best.has_value() || q[i]->seq > best_seq) {
#else
        if (q[i]->seq < best_seq) {
#endif
          best_seq = q[i]->seq;
          best = Match{&q, i, k};
        }
        break;  // later entries in this bucket arrived later
      }
    }
    return best;
  }

  void erase(const Match& m) {
    m.queue->erase(m.queue->begin() + static_cast<std::ptrdiff_t>(m.index));
    if (m.queue->empty()) buckets.erase(m.bucket_key);
  }

  /// Removes a specific envelope (sender unwind path); false if absent.
  bool remove(const Envelope* env) {
    auto it = buckets.find(key(env->context, env->tag));
    if (it == buckets.end()) return false;
    Queue& q = it->second;
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].get() == env) {
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        if (q.empty()) buckets.erase(it);
        return true;
      }
    }
    return false;
  }
};

/// Per-rank mailbox: messages not yet matched by a receive, and receives
/// not yet matched by a message.
struct Mailbox {
  UnexpectedQueue unexpected;
  std::deque<std::shared_ptr<RequestState>> posted;
  /// Simulated time until which this rank's ingress link is occupied by
  /// previously received payloads (receiver-side serialization).
  double link_busy_until = 0.0;
};

}  // namespace dipdc::minimpi::detail
