// The minimpi runtime: rank threads, mailboxes, deadlock detection, and the
// run() entry point.
//
// Usage:
//   auto result = minimpi::run(4, [](minimpi::Comm& comm) {
//     if (comm.rank() == 0) comm.send_value(42, /*dest=*/1);
//     if (comm.rank() == 1) int v = comm.recv_value<int>();
//   });
//
// run() blocks until every rank returns, then reports per-rank statistics
// and simulated completion times.  If any rank throws, all other ranks are
// unblocked with AbortError and the first "real" exception is rethrown to
// the caller.  If the runtime proves a global deadlock (every live rank
// blocked, no operation able to complete), every blocked rank receives a
// DeadlockError naming the stuck operations.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "minimpi/backend.hpp"
#include "minimpi/detail.hpp"
#include "minimpi/options.hpp"
#include "minimpi/stats.hpp"
#include "obs/recorder.hpp"
#include "perfmodel/machine.hpp"

namespace dipdc::minimpi {

class Comm;

/// Directed user-p2p traffic on one (source, destination) world-rank pair,
/// as observed independently by the two endpoints (sender tallies at
/// injection, receiver at ingestion).  Only populated when
/// RuntimeOptions::record_channels is set; on a fault-free run the two
/// sides must agree exactly — the conformance fuzzer's per-channel
/// invariant.
struct ChannelTraffic {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_received = 0;
};

/// Aggregate outcome of one run().
struct RunResult {
  std::vector<CommStats> rank_stats;
  std::vector<double> sim_times;  // final simulated clock per rank
  /// All ranks' trace events (only when RuntimeOptions::record_trace).
  std::vector<TraceEvent> trace;
  /// Per-channel p2p traffic, sorted by (src, dst) (record_channels only).
  std::vector<ChannelTraffic> channels;

  /// Simulated makespan: the slowest rank's clock.
  [[nodiscard]] double max_sim_time() const;
  /// Element-wise sum of all rank statistics.
  [[nodiscard]] CommStats total_stats() const;
};

namespace detail_runtime {

/// Shared state of one running world.  Public API users never touch this;
/// Comm methods (comm.cpp / collectives.cpp) do, under the global lock.
class Runtime {
 public:
  Runtime(int nranks, RuntimeOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] const RuntimeOptions& options() const { return options_; }
  [[nodiscard]] const perfmodel::CostModel& cost() const { return cost_; }

  /// The observability recorder, or nullptr when record_trace is off.
  /// Each rank thread appends to its own lane without locking.
  [[nodiscard]] obs::Recorder* recorder() { return recorder_.get(); }

  /// Pooled payload/envelope storage (thread-safe, own locks).
  detail::BufferPool& buffer_pool() { return *buffer_pool_; }
  [[nodiscard]] std::shared_ptr<detail::Envelope> acquire_envelope() {
    return envelope_pool_->acquire();
  }

  /// Delivers an envelope: matches a posted receive if possible, otherwise
  /// queues it as unexpected.  Lock must be held.
  ///
  /// Returns non-null when the envelope matched a posted receive whose
  /// payload copy was deferred: the caller must release the lock, copy the
  /// payload into the request's buffer, re-acquire the lock, clear
  /// copy_in_flight, set req->done and env->matched, and notify.  (Large
  /// memcpys are kept outside the global lock this way.)
  [[nodiscard]] std::shared_ptr<detail::RequestState> deliver_locked(
      const std::shared_ptr<detail::Envelope>& env);

  /// Blocks `rank` until pred() holds.  Lock must be held (and is released
  /// while sleeping).  Throws DeadlockError/AbortError/RankFailedError on
  /// global failure.
  void blocking_wait(std::unique_lock<std::mutex>& lock, int rank,
                     const char* what, const std::function<bool()>& pred);

  enum class WaitOutcome { kReady, kTimedOut };

  /// blocking_wait with an optional deterministic timeout: when
  /// `can_timeout` and the runtime proves that no rank can make progress
  /// (the deadlock-detection condition), the wait returns kTimedOut instead
  /// of the whole world deadlocking.  This is how reliable-delivery
  /// acknowledgement waits expire: exactly when the message they wait for
  /// is provably lost, never earlier — so retry sequences are
  /// deterministic.  Requires RuntimeOptions::detect_deadlock.
  WaitOutcome blocking_wait_for(std::unique_lock<std::mutex>& lock, int rank,
                                const char* what,
                                const std::function<bool()>& pred,
                                bool can_timeout);

  /// Marks a rank's user function as finished (normally or by exception).
  void rank_exited(int rank, bool by_exception, const std::string& why);

  /// Records a fault-injection kill: every blocked (or later blocking) rank
  /// will be unblocked with RankFailedError naming the dead rank.  Called
  /// by the dying rank just before it throws.
  void note_rank_killed(int rank, const std::string& why);

  /// World rank killed by fault injection, or -1.  Stable once the world
  /// has joined (run() reads it after the threads exit).
  [[nodiscard]] int failed_rank() const { return failed_rank_; }

  /// Lifecycle of one rank as the failure-recovery machinery sees it.
  enum class RankLife { kRunning, kDead, kExited };

  /// Outcome of one completed shrink barrier (see failure_shrink).
  struct ShrinkResult {
    std::vector<int> survivors;  // world ranks still running, ascending
    int context = 0;             // fresh context id for the shrunken comm
  };

  /// ULFM-style failure agreement: after a fault-injection kill, every
  /// surviving (still-running) rank calls this once.  The last arrival
  /// finalizes the epoch — it purges every mailbox (pre-failure traffic
  /// must never match post-recovery receives), clears the kill-caused
  /// global abort so survivors can block again, allocates one fresh
  /// context id for the shrunken communicator, and publishes the survivor
  /// set.  Earlier arrivals sleep until the epoch closes.  Throws if no
  /// rank has failed, or if a survivor dies of a *real* exception while
  /// the barrier is pending (the agreement can then never complete).
  ShrinkResult failure_shrink(int world_rank);

  /// True once a shrink barrier completed: run() must not rethrow the
  /// dead rank's (recovered-from) RankFailedError.  Read after join.
  [[nodiscard]] bool recovered() const { return recovered_; }

  std::mutex& mutex() { return mu_; }
  std::condition_variable& condvar() { return cv_; }
  detail::Mailbox& mailbox(int rank) {
    return mailboxes_[static_cast<std::size_t>(rank)];
  }
  detail::RankState& rank_state(int world_rank) {
    return rank_states_[static_cast<std::size_t>(world_rank)];
  }

  /// Reserves `n` consecutive communicator context ids (for split()).
  int allocate_contexts(int n) { return next_context_.fetch_add(n); }

  /// The transport backend carrying envelope frames (see backend.hpp).
  [[nodiscard]] detail_backend::Backend& backend() { return *backend_; }

  /// True when ranks share one address space (threads backend), so
  /// envelopes cross by pointer and zero-copy payload handoff is safe.
  [[nodiscard]] bool backend_shares_memory() const { return backend_shares_; }

  /// Pushes `env` through the transport backend and returns the envelope
  /// that actually gets delivered.  On the threads backend this is `env`
  /// itself (no serialization).  On shm/tcp the envelope is serialized,
  /// round-trips through the foreign transport (router process / loopback
  /// relay), and comes back as a fresh pooled envelope that owns its
  /// payload bytes.  Must be called WITHOUT the runtime lock, by the
  /// sending rank's own thread (it blocks on the backend channel).
  /// Borrowed payloads are rejected loudly — callers must degrade
  /// zero-copy to a copy before crossing the seam.
  [[nodiscard]] std::shared_ptr<detail::Envelope> transport_envelope(
      std::shared_ptr<detail::Envelope> env);

 private:
  struct Waiter {
    int rank;
    const char* what;
    const std::function<bool()>* pred;
    bool can_timeout = false;
    bool timed_out = false;
  };

  /// With every live rank blocked, decides whether any waiter can still
  /// make progress; if not, expires timeout-capable waiters, and only when
  /// none exist flags a deadlock.  Lock must be held.
  void check_deadlock_locked();

  /// Closes a pending shrink barrier when every still-running rank has
  /// acked (called on each ack and on each rank exit, since a normal exit
  /// shrinks the running set the barrier is waiting on).  Lock held.
  void maybe_finalize_shrink_locked();

  std::mutex mu_;
  std::condition_variable cv_;
  RuntimeOptions options_;
  perfmodel::CostModel cost_;
  int nranks_;
  int alive_;
  // Shared so that buffer/envelope deleters (which capture the pool) stay
  // valid even if they run after the Runtime is gone.
  std::shared_ptr<detail::BufferPool> buffer_pool_;
  std::shared_ptr<detail::EnvelopePool> envelope_pool_;
  std::vector<detail::Mailbox> mailboxes_;
  std::vector<detail::RankState> rank_states_;
  std::unique_ptr<detail_backend::Backend> backend_;
  bool backend_shares_ = true;
  std::unique_ptr<obs::Recorder> recorder_;  // non-null iff record_trace
  std::atomic<int> next_context_{1};
  std::vector<Waiter*> waiters_;
  bool aborted_ = false;
  bool deadlocked_ = false;
  int failed_rank_ = -1;  // rank killed by fault injection, or -1
  std::string abort_reason_;

  // Shrink-on-failure state (all under mu_; recovered_ is additionally
  // read by run() after the world joined).
  std::vector<RankLife> life_;
  bool abort_from_kill_ = false;   // aborted_ was raised by a kill
  bool recovered_ = false;         // a shrink barrier completed
  bool shrink_poisoned_ = false;   // a survivor died mid-agreement
  int shrink_generation_ = 0;
  int shrink_acks_ = 0;
  ShrinkResult shrink_last_;
};

}  // namespace detail_runtime

/// Runs `fn` on `nranks` ranks (one thread each) and returns per-rank
/// statistics and simulated times.  Rethrows the first rank exception.
RunResult run(int nranks, const std::function<void(Comm&)>& fn,
              RuntimeOptions options = {});

}  // namespace dipdc::minimpi
