// TCP transport backend (loopback first): every frame is written
// length-prefixed onto the sending rank's socket, crosses the kernel
// network stack to an in-process relay, and is echoed back on the same
// connection.  The relay is a single nonblocking progress loop
// (poll + partial-read/-write reassembly), which is the shape a future
// multi-machine peer would grow out of: replace "echo to the same
// connection" with "forward to the destination host" and the framing,
// progress loop, and runtime seam all stay as they are.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <thread>

#include "minimpi/backend.hpp"
#include "minimpi/error.hpp"
#include "support/error.hpp"

namespace dipdc::minimpi::detail_backend {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw MpiError(std::string("tcp backend: ") + what + ": " +
                 std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

/// Full blocking write, resilient to partial writes and EINTR.
/// MSG_NOSIGNAL: a dead relay must surface as an error, not SIGPIPE.
void write_all(int fd, const std::byte* data, std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::send(fd, data, n, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

/// Full blocking read; EOF means the relay went away mid-run.
void read_all(int fd, std::byte* data, std::size_t n) {
  while (n > 0) {
    const ssize_t got = ::read(fd, data, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (got == 0) {
      throw MpiError("tcp backend: relay closed the connection");
    }
    data += got;
    n -= static_cast<std::size_t>(got);
  }
}

class TcpBackend final : public Backend {
 public:
  explicit TcpBackend(const BackendOptions& opt)
      : host_(opt.tcp_host), port_(opt.tcp_port) {}

  ~TcpBackend() override {
    try {
      finalize();
    } catch (...) {
    }
  }

  [[nodiscard]] const char* name() const override { return "tcp"; }
  [[nodiscard]] bool shares_address_space() const override { return false; }

  void connect(int nranks) override {
    DIPDC_REQUIRE(relay_fds_.empty(), "tcp backend connected twice");
    const std::size_t n = static_cast<std::size_t>(nranks);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
      throw MpiError("tcp backend: bad host address '" + host_ + "'");
    }

    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      ::close(listener);
      throw_errno("bind");
    }
    if (::listen(listener, nranks + 8) < 0) {
      ::close(listener);
      throw_errno("listen");
    }
    // With port 0 the kernel picked an ephemeral port; learn it so the
    // rank sockets know where to connect.
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) < 0) {
      ::close(listener);
      throw_errno("getsockname");
    }

    // Connect one client socket per rank (the kernel backlog completes
    // the handshakes), then accept the relay ends.
    rank_fds_.reserve(n);
    relay_fds_.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket");
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) < 0) {
        ::close(fd);
        throw_errno("connect");
      }
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      rank_fds_.push_back(fd);
    }
    for (std::size_t r = 0; r < n; ++r) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) throw_errno("accept");
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      set_nonblocking(fd);
      relay_fds_.push_back(fd);
    }
    ::close(listener);

    pending_ = std::vector<Outbox>(n);
    stop_.store(false, std::memory_order_release);
    relay_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) progress();
    });
  }

  void send(int rank, std::span<const std::byte> frame) override {
    const int fd = rank_fds_[static_cast<std::size_t>(rank)];
    const std::uint64_t len = frame.size();
    write_all(fd, reinterpret_cast<const std::byte*>(&len), sizeof(len));
    write_all(fd, frame.data(), frame.size());
  }

  void recv(int rank, std::vector<std::byte>& frame) override {
    const int fd = rank_fds_[static_cast<std::size_t>(rank)];
    std::uint64_t len = 0;
    read_all(fd, reinterpret_cast<std::byte*>(&len), sizeof(len));
    frame.resize(static_cast<std::size_t>(len));
    read_all(fd, frame.data(), frame.size());
  }

  /// One iteration of the relay's nonblocking progress loop: poll every
  /// connection, ingest whatever arrived, and push queued echo bytes back
  /// out as far as the socket buffers allow.  The relay thread drives
  /// this; frames are never parsed here — the byte stream is echoed
  /// verbatim and the length-prefixed framing is reconstructed by the
  /// receiving rank.
  void progress() override {
    std::vector<pollfd> fds(relay_fds_.size());
    for (std::size_t i = 0; i < relay_fds_.size(); ++i) {
      fds[i].fd = relay_fds_[i];
      fds[i].events = POLLIN;
      if (!pending_[i].chunks.empty()) fds[i].events |= POLLOUT;
    }
    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (ready <= 0) return;  // timeout/EINTR: loop re-checks stop_
    std::byte buf[16384];
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        for (;;) {
          const ssize_t got = ::read(fds[i].fd, buf, sizeof(buf));
          if (got > 0) {
            pending_[i].chunks.emplace_back(buf, buf + got);
            continue;
          }
          // EOF or EAGAIN: a closed rank socket just goes quiet here;
          // finalize() tears the relay down.
          break;
        }
      }
      Outbox& out = pending_[i];
      while (!out.chunks.empty()) {
        std::vector<std::byte>& chunk = out.chunks.front();
        const std::size_t left = chunk.size() - out.offset;
        const ssize_t wrote = ::send(fds[i].fd, chunk.data() + out.offset,
                                     left, MSG_NOSIGNAL);
        if (wrote < 0) break;  // EAGAIN: retry next iteration
        out.offset += static_cast<std::size_t>(wrote);
        if (out.offset == chunk.size()) {
          out.chunks.pop_front();
          out.offset = 0;
        } else {
          break;  // socket buffer full mid-chunk
        }
      }
    }
  }

  void finalize() override {
    if (relay_.joinable()) {
      stop_.store(true, std::memory_order_release);
      relay_.join();
    }
    for (const int fd : rank_fds_) ::close(fd);
    rank_fds_.clear();
    for (const int fd : relay_fds_) ::close(fd);
    relay_fds_.clear();
  }

 private:
  struct Outbox {
    std::deque<std::vector<std::byte>> chunks;
    std::size_t offset = 0;  // bytes of chunks.front() already written
  };

  std::string host_;
  std::uint16_t port_;
  std::vector<int> rank_fds_;   // blocking; owned by the rank threads
  std::vector<int> relay_fds_;  // nonblocking; owned by the relay thread
  std::vector<Outbox> pending_;
  std::atomic<bool> stop_{false};
  std::thread relay_;
};

}  // namespace

std::unique_ptr<Backend> make_tcp_backend(const BackendOptions& opt) {
  return std::make_unique<TcpBackend>(opt);
}

}  // namespace dipdc::minimpi::detail_backend
