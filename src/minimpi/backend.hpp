// The transport-backend seam beneath the minimpi runtime.
//
// Everything that defines minimpi's semantics — envelope pools,
// eager/rendezvous matching, reliable delivery, deadlock detection, and
// the obs sequence plumbing — lives ABOVE this seam, in Runtime/Comm.  A
// Backend only moves opaque byte frames: the sender serializes an
// envelope, pushes the frame into its per-rank channel, and receives the
// frame back after it has genuinely crossed the backend's transport
// (in-process queue, shared-memory rings serviced by a forked router
// process, or loopback TCP through a nonblocking relay).  The frame that
// comes back is deserialized into a fresh pooled envelope and delivered
// through the ordinary mailbox path.
//
// Because the same rank thread performs delivery at the same program
// point on every backend, and the simulated-timing fields travel inside
// the frame, simulated results are bit-identical across backends — the
// cross-backend conformance oracle in src/fuzz checks exactly that.
//
// Channel contract (what Runtime relies on):
//  * channel `r` belongs to world rank `r`; only that rank's thread calls
//    send(r, ...)/recv(r, ...), and frames echo back in FIFO order;
//  * send() may block on backpressure but always completes while the
//    counterpart (router process / relay thread) is alive;
//  * recv() blocks until the next frame for `r` arrives, and fails loudly
//    (MpiError) instead of hanging forever if the transport dies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "minimpi/detail.hpp"
#include "minimpi/options.hpp"

namespace dipdc::minimpi {

/// Canonical CLI name of a backend kind ("threads" / "shm" / "tcp").
[[nodiscard]] const char* to_string(BackendKind kind);

/// Parses a CLI spelling into a BackendKind; false when unrecognised.
[[nodiscard]] bool parse_backend_kind(std::string_view name,
                                      BackendKind* out);

namespace detail_backend {

class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// True when frames never leave the sender's address space, so the
  /// runtime may skip serialization entirely and zero-copy payload
  /// handoff (borrowed/shared buffers) is safe.
  [[nodiscard]] virtual bool shares_address_space() const = 0;

  /// Establishes the per-rank channels (rings, sockets, router/relay).
  /// Called exactly once, before any rank thread exists — the shm backend
  /// forks its router here, while the process is still single-threaded.
  virtual void connect(int nranks) = 0;

  /// Pushes one frame into world rank `rank`'s channel.
  virtual void send(int rank, std::span<const std::byte> frame) = 0;

  /// Blocks until the next frame on `rank`'s channel arrives and fills
  /// `frame` with it.
  virtual void recv(int rank, std::vector<std::byte>& frame) = 0;

  /// Pumps transport I/O.  Backends with an internal progress thread (the
  /// TCP relay's nonblocking poll loop) drive this themselves; for the
  /// others it is a no-op hook.
  virtual void progress() {}

  /// Tears the transport down (stops the router/relay, releases rings and
  /// sockets).  Idempotent; also invoked by the destructor.
  virtual void finalize() = 0;
};

/// Wire header of one serialized envelope.  All simulated-timing fields
/// are carried bit-exactly so delivery on the far side of the seam
/// reconstructs the identical simulation event.
struct WireHeader {
  static constexpr std::uint32_t kMagic = 0x44495057;  // "DIPW"

  std::uint32_t magic = kMagic;
  std::uint32_t flags = 0;  // bit 0: rendezvous, bit 1: internal
  std::int32_t source = 0;
  std::int32_t src_world = 0;
  std::int32_t dest = 0;
  std::int32_t tag = 0;
  std::int32_t context = 0;
  std::uint32_t reserved = 0;  // explicit padding, always zero on the wire
  std::uint64_t trace_seq = 0;
  double arrival_head = 0.0;
  double byte_time = 0.0;
  std::uint64_t payload_bytes = 0;
};
static_assert(sizeof(WireHeader) == 64, "wire header layout drifted");

/// Serializes `env` (header + payload bytes) into `out`.  The payload is
/// flattened whatever its storage class; callers must never pass a
/// borrowed payload across the seam (Runtime::transport_envelope guards).
void serialize_envelope(const detail::Envelope& env,
                        std::vector<std::byte>& out);

/// Rebuilds `env` from a serialized frame.  The payload lands in the
/// envelope's inline storage or a fresh pooled buffer — never a pointer
/// into the frame — so the envelope owns its bytes on this side of the
/// seam.  Throws MpiError on a malformed frame.
void deserialize_envelope(std::span<const std::byte> frame,
                          detail::Envelope& env, detail::BufferPool& pool);

/// Builds the backend selected by `opt.kind` (not yet connected).
[[nodiscard]] std::unique_ptr<Backend> make_backend(
    const BackendOptions& opt);

/// The two multi-process/-socket backends, exposed for make_backend and
/// direct unit tests (backend.cpp, backend_shm.cpp, backend_tcp.cpp).
[[nodiscard]] std::unique_ptr<Backend> make_threads_backend();
[[nodiscard]] std::unique_ptr<Backend> make_shm_backend(
    const BackendOptions& opt);
[[nodiscard]] std::unique_ptr<Backend> make_tcp_backend(
    const BackendOptions& opt);

}  // namespace detail_backend
}  // namespace dipdc::minimpi
