// Shared-memory transport backend: every frame round-trips through
// MAP_SHARED rings serviced by a router running in a forked child
// PROCESS.  The bytes therefore genuinely leave the sender's address
// space — any pointer smuggled inside a frame would dangle in the router
// — which is exactly the property the zero-copy guards in the runtime
// are tested against.
//
// Layout (one anonymous shared mapping):
//   [Control][per-rank: tx RingCtl, rx RingCtl][per-rank: tx buf, rx buf]
//
// Each ring is a byte-stream SPSC queue (monotonic head/tail counters,
// like a pipe): producers write length-prefixed frames, consumers read
// them back, and frames larger than the ring simply stream through it in
// chunks.  The router copies tx -> rx per rank (an echo), using only raw
// memory operations, atomics, and nanosleep — safe in a forked child.
// connect() runs before any rank thread exists, so the fork happens while
// the parent is effectively single-threaded.
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <new>
#include <thread>

#include "minimpi/backend.hpp"
#include "minimpi/error.hpp"
#include "support/error.hpp"

namespace dipdc::minimpi::detail_backend {

namespace {

constexpr std::size_t kCacheLine = 64;

/// Wall-clock failsafe: ring waits abandon ship (MpiError) if the router
/// makes no progress for this long.  Orders of magnitude above any real
/// echo latency; exists so a dead router hangs nothing.  The runtime's
/// deadlock detector cannot see ranks blocked inside the backend (they
/// hold no runtime lock and register no waiter), so the backend must
/// guarantee bounded waits on its own.
constexpr auto kStallLimit = std::chrono::seconds(60);

struct RingCtl {
  alignas(kCacheLine) std::atomic<std::uint64_t> head{0};  // consumer
  alignas(kCacheLine) std::atomic<std::uint64_t> tail{0};  // producer
};

struct Control {
  std::atomic<std::uint32_t> stop{0};
};

/// Brief spin, then yield, then sleep — keeps echo latency low without
/// burning a core while a peer is scheduled out.
class Backoff {
 public:
  void pause() {
    if (spins_ < 64) {
      ++spins_;
    } else if (spins_ < 128) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() { spins_ = 0; }

 private:
  int spins_ = 0;
};

/// One direction of one rank's channel: a byte-stream ring over shared
/// memory.  Exactly one producer and one consumer (rank thread on one
/// side, router process on the other).
struct Ring {
  RingCtl* ctl = nullptr;
  std::byte* buf = nullptr;
  std::size_t cap = 0;

  [[nodiscard]] std::size_t readable() const {
    return static_cast<std::size_t>(
        ctl->tail.load(std::memory_order_acquire) -
        ctl->head.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::size_t writable() const {
    return cap - static_cast<std::size_t>(
                     ctl->tail.load(std::memory_order_relaxed) -
                     ctl->head.load(std::memory_order_acquire));
  }

  /// Copies up to n bytes in at the current tail; returns bytes written.
  std::size_t push_some(const std::byte* src, std::size_t n) {
    const std::size_t room = writable();
    const std::size_t take = n < room ? n : room;
    if (take == 0) return 0;
    const std::uint64_t tail = ctl->tail.load(std::memory_order_relaxed);
    const std::size_t at = static_cast<std::size_t>(tail % cap);
    const std::size_t first = take < cap - at ? take : cap - at;
    std::memcpy(buf + at, src, first);
    if (take > first) std::memcpy(buf, src + first, take - first);
    ctl->tail.store(tail + take, std::memory_order_release);
    return take;
  }

  /// Copies up to n bytes out from the current head; returns bytes read.
  std::size_t pop_some(std::byte* dst, std::size_t n) {
    const std::size_t avail = readable();
    const std::size_t take = n < avail ? n : avail;
    if (take == 0) return 0;
    const std::uint64_t head = ctl->head.load(std::memory_order_relaxed);
    const std::size_t at = static_cast<std::size_t>(head % cap);
    const std::size_t first = take < cap - at ? take : cap - at;
    std::memcpy(dst, buf + at, first);
    if (take > first) std::memcpy(dst + first, buf, take - first);
    ctl->head.store(head + take, std::memory_order_release);
    return take;
  }
};

class ShmBackend final : public Backend {
 public:
  explicit ShmBackend(const BackendOptions& opt)
      : ring_bytes_(opt.shm_ring_bytes < 64 ? 64 : opt.shm_ring_bytes) {}

  ~ShmBackend() override {
    try {
      finalize();
    } catch (...) {
      // Destructor teardown must not throw; finalize() already escalated
      // to SIGKILL before giving up.
    }
  }

  [[nodiscard]] const char* name() const override { return "shm"; }
  [[nodiscard]] bool shares_address_space() const override { return false; }

  void connect(int nranks) override {
    DIPDC_REQUIRE(map_ == nullptr, "shm backend connected twice");
    nranks_ = nranks;
    const std::size_t n = static_cast<std::size_t>(nranks);
    const std::size_t ctl_bytes =
        sizeof(Control) + 2 * n * sizeof(RingCtl);
    map_bytes_ = ctl_bytes + 2 * n * ring_bytes_;
    void* mem = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      throw MpiError(std::string("shm backend: mmap failed: ") +
                     std::strerror(errno));
    }
    map_ = static_cast<std::byte*>(mem);
    control_ = new (map_) Control();
    auto* ctls = reinterpret_cast<RingCtl*>(map_ + sizeof(Control));
    std::byte* bufs = map_ + ctl_bytes;
    tx_ = std::vector<Ring>(n);
    rx_ = std::vector<Ring>(n);
    spill_ = std::vector<Spill>(n);
    for (std::size_t r = 0; r < n; ++r) {
      tx_[r] = Ring{new (&ctls[2 * r]) RingCtl(),
                    bufs + (2 * r) * ring_bytes_, ring_bytes_};
      rx_[r] = Ring{new (&ctls[2 * r + 1]) RingCtl(),
                    bufs + (2 * r + 1) * ring_bytes_, ring_bytes_};
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::munmap(map_, map_bytes_);
      map_ = nullptr;
      throw MpiError(std::string("shm backend: fork failed: ") +
                     std::strerror(errno));
    }
    if (pid == 0) {
      route_frames();  // never returns
    }
    router_ = pid;
  }

  void send(int rank, std::span<const std::byte> frame) override {
    const std::size_t r = static_cast<std::size_t>(rank);
    const std::uint64_t len = frame.size();
    stream_write(r, reinterpret_cast<const std::byte*>(&len), sizeof(len));
    stream_write(r, frame.data(), frame.size());
  }

  void recv(int rank, std::vector<std::byte>& frame) override {
    const std::size_t r = static_cast<std::size_t>(rank);
    std::uint64_t len = 0;
    stream_read(r, reinterpret_cast<std::byte*>(&len), sizeof(len));
    frame.resize(static_cast<std::size_t>(len));
    stream_read(r, frame.data(), frame.size());
  }

  void finalize() override {
    if (router_ > 0) {
      control_->stop.store(1, std::memory_order_release);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      int status = 0;
      for (;;) {
        const pid_t done = ::waitpid(router_, &status, WNOHANG);
        if (done == router_ || (done < 0 && errno == ECHILD)) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(router_, SIGKILL);
          ::waitpid(router_, &status, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      router_ = -1;
    }
    if (map_ != nullptr) {
      ::munmap(map_, map_bytes_);
      map_ = nullptr;
    }
  }

 private:
  /// Blocking stream write with the stall failsafe (parent side only).
  ///
  /// Deadlock note: a frame larger than the ring cannot fit in tx and rx at
  /// once.  While this rank is still pushing the tail of a big frame into
  /// tx, the router is already echoing its head into rx — and blocks when
  /// rx fills, at which point it stops draining tx and both sides would
  /// wedge.  So whenever tx is full the sender drains whatever has already
  /// come back on rx into a local spill buffer; recv serves the spill
  /// before touching the ring.  (Each rank strictly alternates send/recv,
  /// so the spill is plain per-rank state touched only by its own thread.)
  void stream_write(std::size_t r, const std::byte* src, std::size_t n) {
    Ring& ring = tx_[r];
    Backoff backoff;
    auto last_progress = std::chrono::steady_clock::now();
    while (n > 0) {
      const std::size_t wrote = ring.push_some(src, n);
      if (wrote > 0) {
        src += wrote;
        n -= wrote;
        backoff.reset();
        last_progress = std::chrono::steady_clock::now();
        continue;
      }
      if (drain_to_spill(r) > 0) {
        backoff.reset();
        last_progress = std::chrono::steady_clock::now();
        continue;
      }
      check_stalled(last_progress, "send");
      backoff.pause();
    }
  }

  void stream_read(std::size_t r, std::byte* dst, std::size_t n) {
    // Echoed bytes parked by stream_write come first: they left the ring
    // earlier, and ring order is frame order.
    Spill& spill = spill_[r];
    if (spill.consumed < spill.bytes.size()) {
      const std::size_t have = spill.bytes.size() - spill.consumed;
      const std::size_t take = n < have ? n : have;
      std::memcpy(dst, spill.bytes.data() + spill.consumed, take);
      spill.consumed += take;
      if (spill.consumed == spill.bytes.size()) {
        spill.bytes.clear();
        spill.consumed = 0;
      }
      dst += take;
      n -= take;
    }
    Ring& ring = rx_[r];
    Backoff backoff;
    auto last_progress = std::chrono::steady_clock::now();
    while (n > 0) {
      const std::size_t got = ring.pop_some(dst, n);
      if (got > 0) {
        dst += got;
        n -= got;
        backoff.reset();
        last_progress = std::chrono::steady_clock::now();
        continue;
      }
      check_stalled(last_progress, "recv");
      backoff.pause();
    }
  }

  /// Moves everything currently readable on rx[r] into the spill buffer;
  /// returns the number of bytes drained.
  std::size_t drain_to_spill(std::size_t r) {
    Ring& ring = rx_[r];
    const std::size_t avail = ring.readable();
    if (avail == 0) return 0;
    Spill& spill = spill_[r];
    const std::size_t old = spill.bytes.size();
    spill.bytes.resize(old + avail);
    const std::size_t got = ring.pop_some(spill.bytes.data() + old, avail);
    spill.bytes.resize(old + got);
    return got;
  }

  void check_stalled(std::chrono::steady_clock::time_point last_progress,
                     const char* what) {
    if (std::chrono::steady_clock::now() - last_progress < kStallLimit) {
      return;
    }
    int status = 0;
    const bool router_gone =
        ::waitpid(router_, &status, WNOHANG) == router_;
    if (router_gone) router_ = -1;
    throw MpiError(std::string("shm backend: ") + what +
                   (router_gone ? " stalled: router process died"
                                : " stalled: router unresponsive"));
  }

  /// Router child: echoes every length-prefixed frame tx[r] -> rx[r].
  /// Runs in the forked process; touches only the shared mapping, a stack
  /// chunk buffer, atomics, and nanosleep, then _exit()s.
  [[noreturn]] void route_frames() {
    std::byte chunk[8192];
    for (;;) {
      bool idle = true;
      for (int r = 0; r < nranks_; ++r) {
        Ring& tx = tx_[static_cast<std::size_t>(r)];
        if (tx.readable() < sizeof(std::uint64_t)) continue;
        idle = false;
        std::uint64_t len = 0;
        child_read(tx, reinterpret_cast<std::byte*>(&len), sizeof(len));
        Ring& rx = rx_[static_cast<std::size_t>(r)];
        child_write(rx, reinterpret_cast<const std::byte*>(&len),
                    sizeof(len));
        std::uint64_t left = len;
        while (left > 0) {
          const std::size_t want =
              left < sizeof(chunk) ? static_cast<std::size_t>(left)
                                   : sizeof(chunk);
          child_read(tx, chunk, want);
          child_write(rx, chunk, want);
          left -= want;
        }
      }
      if (idle) {
        if (control_->stop.load(std::memory_order_acquire) != 0) {
          ::_exit(0);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  /// Child-side blocking stream ops: no exceptions, no allocation; if the
  /// parent orders a stop mid-frame (it aborted), just exit.
  void child_read(Ring& ring, std::byte* dst, std::size_t n) {
    Backoff backoff;
    while (n > 0) {
      const std::size_t got = ring.pop_some(dst, n);
      if (got > 0) {
        dst += got;
        n -= got;
        backoff.reset();
        continue;
      }
      if (control_->stop.load(std::memory_order_acquire) != 0) ::_exit(0);
      backoff.pause();
    }
  }

  void child_write(Ring& ring, const std::byte* src, std::size_t n) {
    Backoff backoff;
    while (n > 0) {
      const std::size_t wrote = ring.push_some(src, n);
      if (wrote > 0) {
        src += wrote;
        n -= wrote;
        backoff.reset();
        continue;
      }
      if (control_->stop.load(std::memory_order_acquire) != 0) ::_exit(0);
      backoff.pause();
    }
  }

  std::size_t ring_bytes_;
  int nranks_ = 0;
  std::byte* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  Control* control_ = nullptr;
  /// Echoed bytes drained off rx while the rank was still blocked pushing
  /// a big frame into tx (see stream_write).  Touched only by the owning
  /// rank's thread.
  struct Spill {
    std::vector<std::byte> bytes;
    std::size_t consumed = 0;
  };

  std::vector<Ring> tx_;  // rank -> ring towards the router
  std::vector<Ring> rx_;  // rank -> ring back from the router
  std::vector<Spill> spill_;
  pid_t router_ = -1;
};

}  // namespace

std::unique_ptr<Backend> make_shm_backend(const BackendOptions& opt) {
  return std::make_unique<ShmBackend>(opt);
}

}  // namespace dipdc::minimpi::detail_backend
