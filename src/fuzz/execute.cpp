#include "fuzz/execute.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <map>
#include <span>

#include "container/container.hpp"
#include "fuzz/content.hpp"
#include "fuzz/repro_util.hpp"
#include "minimpi/comm.hpp"
#include "support/error.hpp"

namespace dipdc::fuzz {

// repro_util.hpp re-declares the collective op kinds as plain integers so
// emitted repros don't need program.hpp; keep the two in lockstep.
static_assert(static_cast<int>(OpKind::kBarrier) == 10 &&
              static_cast<int>(OpKind::kAlltoallv) == 22);
static_assert(static_cast<int>(OpKind::kIbcast) == 29 &&
              static_cast<int>(OpKind::kIallgatherv) == 32);

namespace {

/// Per-rank interpreter state: request slots, their buffers, and the
/// metadata needed to emit an observation when a deferred wait completes.
struct RankInterp {
  std::array<minimpi::Request, 16> reqs;
  std::array<std::vector<std::uint8_t>, 16> bufs;
  struct SlotMeta {
    bool is_recv = false;
    std::uint32_t event = 0;
    /// Icollective kind when the slot holds one; kWait = plain p2p slot.
    OpKind coll = OpKind::kWait;
  };
  std::array<SlotMeta, 16> meta;
  /// Live buffers of in-flight nonblocking collectives, by slot.
  std::array<IcollBuffers, 16> coll_bufs;
  /// isend payloads must stay alive until their wait (the transport may
  /// borrow them zero-copy).
  std::deque<std::vector<std::uint8_t>> send_keepalive;
};

void run_rank(const Program& p, minimpi::Comm& world, RankInterp& st,
              std::vector<Observation>& obs) {
  const int rank = world.rank();
  std::deque<minimpi::Comm> comm_store;
  std::map<int, minimpi::Comm*> comms;
  comms[0] = &world;
  std::map<int, container::Container<std::uint64_t>> containers;

  auto slot_idx = [](int req) { return static_cast<std::size_t>(req); };

  // DIPDC_FUZZ_TRACE=1 logs every op as it starts — when a run wedges,
  // the last line per rank is where it is blocked.
  static const bool trace_ops = std::getenv("DIPDC_FUZZ_TRACE") != nullptr;

  for (const Op& op : p.ops[static_cast<std::size_t>(rank)]) {
    minimpi::Comm& comm = *comms.at(op.comm);
    if (trace_ops) {
      std::fprintf(stderr, "[fuzz] rank %d e%u %s start\n", rank, op.event,
                   op_kind_name(op.kind));
    }
    switch (op.kind) {
      case OpKind::kSend:
      case OpKind::kSendReliable: {
        const std::vector<std::uint8_t> m =
            message_bytes(p.seed, op.msg, op.bytes);
        if (op.kind == OpKind::kSend) {
          comm.send(std::span<const std::uint8_t>(m), op.peer, op.tag);
        } else {
          comm.send_reliable(std::span<const std::uint8_t>(m), op.peer,
                             op.tag);
        }
        break;
      }
      case OpKind::kIsend: {
        st.send_keepalive.push_back(message_bytes(p.seed, op.msg, op.bytes));
        st.reqs[slot_idx(op.req)] = comm.isend(
            std::span<const std::uint8_t>(st.send_keepalive.back()), op.peer,
            op.tag);
        st.meta[slot_idx(op.req)] = {false, op.event};
        break;
      }
      case OpKind::kRecv:
      case OpKind::kRecvReliable: {
        std::vector<std::uint8_t> m(op.bytes);
        const minimpi::Status s =
            op.kind == OpKind::kRecv
                ? comm.recv(std::span<std::uint8_t>(m), op.peer, op.tag)
                : comm.recv_reliable(std::span<std::uint8_t>(m), op.peer,
                                     op.tag);
        m.resize(s.bytes);
        obs.push_back({op.event, op.kind, s.source, s.tag, std::move(m)});
        break;
      }
      case OpKind::kProbeRecv: {
        const minimpi::Status ps = comm.probe(op.peer, op.tag);
        std::vector<std::uint8_t> m(ps.bytes);
        const minimpi::Status s =
            comm.recv(std::span<std::uint8_t>(m), ps.source, ps.tag);
        m.resize(s.bytes);
        obs.push_back({op.event, op.kind, s.source, s.tag, std::move(m)});
        break;
      }
      case OpKind::kIrecv: {
        st.bufs[slot_idx(op.req)].assign(op.bytes, 0);
        st.reqs[slot_idx(op.req)] = comm.irecv(
            std::span<std::uint8_t>(st.bufs[slot_idx(op.req)]), op.peer,
            op.tag);
        st.meta[slot_idx(op.req)] = {true, op.event};
        break;
      }
      case OpKind::kWait: {
        const minimpi::Status s = comm.wait(st.reqs[slot_idx(op.req)]);
        const RankInterp::SlotMeta m = st.meta[slot_idx(op.req)];
        if (m.coll != OpKind::kWait) {
          obs.push_back({m.event, m.coll, -2, -2,
                         st.coll_bufs[slot_idx(op.req)].result()});
        } else if (m.is_recv) {
          std::vector<std::uint8_t> buf =
              std::move(st.bufs[slot_idx(op.req)]);
          buf.resize(s.bytes);
          obs.push_back(
              {m.event, OpKind::kIrecv, s.source, s.tag, std::move(buf)});
        }
        break;
      }
      case OpKind::kWaitAll: {
        for (int r = op.req; r < op.req + op.nreq; ++r) {
          const minimpi::Status s = comm.wait(st.reqs[slot_idx(r)]);
          const RankInterp::SlotMeta m = st.meta[slot_idx(r)];
          if (m.coll != OpKind::kWait) {
            obs.push_back({m.event, m.coll, -2, -2,
                           st.coll_bufs[slot_idx(r)].result()});
          } else if (m.is_recv) {
            std::vector<std::uint8_t> buf = std::move(st.bufs[slot_idx(r)]);
            buf.resize(s.bytes);
            obs.push_back(
                {m.event, OpKind::kIrecv, s.source, s.tag, std::move(buf)});
          }
        }
        break;
      }
      case OpKind::kSendrecv: {
        const std::vector<std::uint8_t> s =
            message_bytes(p.seed, op.msg, op.bytes);
        std::vector<std::uint8_t> r(op.bytes2);
        const minimpi::Status rs = comm.sendrecv(
            std::span<const std::uint8_t>(s), op.peer, op.tag,
            std::span<std::uint8_t>(r), op.peer2, op.tag2);
        r.resize(rs.bytes);
        obs.push_back({op.event, op.kind, rs.source, rs.tag, std::move(r)});
        break;
      }
      case OpKind::kSplit: {
        comm_store.push_back(comm.split(op.color, op.key));
        comms[op.result_comm] = &comm_store.back();
        break;
      }
      case OpKind::kSimCompute:
        comm.sim_compute(op.amount, op.amount);
        break;
      case OpKind::kSimAdvance:
        comm.sim_advance(op.amount);
        break;
      case OpKind::kContainerCreate: {
        containers.emplace(
            op.color,
            container::Container<std::uint64_t>::from_local(
                comm, op.elems, 1,
                container_block(p.seed, op.color, op.elems, comm.size(),
                                comm.rank())));
        break;
      }
      case OpKind::kContainerSetWeight: {
        // The op is carried by every member; the element's current owner
        // (wherever earlier repartitions moved it) applies the update.
        auto& k = containers.at(op.color);
        const std::uint64_t g = op.msg;
        if (g >= k.global_begin() && g < k.global_begin() + k.count()) {
          k.set_weight(static_cast<std::size_t>(g - k.global_begin()),
                       op.amount);
        }
        break;
      }
      case OpKind::kContainerRepartition: {
        auto& k = containers.at(op.color);
        (void)k.repartition();
        obs.push_back({op.event, op.kind, -2, -2,
                       container_obs(k.partitioning().cuts(), k.local())});
        break;
      }
      case OpKind::kIbcast:
      case OpKind::kIreduce:
      case OpKind::kIallreduce:
      case OpKind::kIallgatherv: {
        // Nonblocking collectives issue through the shared helper; the
        // result observation is emitted when the deferred wait completes.
        const std::size_t s = slot_idx(op.req);
        st.coll_bufs[s] = {};
        st.reqs[s] = issue_icollective(
            comm, p.seed, static_cast<int>(op.kind), op.event, op.elems,
            op.elem_size, op.root, static_cast<int>(op.rop), op.counts,
            st.coll_bufs[s]);
        st.meta[s] = {false, op.event, op.kind};
        break;
      }
      default: {
        // Collectives run through the same helper emitted repros use.
        std::vector<std::uint8_t> result = run_collective(
            comm, p.seed, static_cast<int>(op.kind), op.event, op.elems,
            op.elem_size, op.root, static_cast<int>(op.rop), op.counts,
            op.counts2);
        obs.push_back({op.event, op.kind, -2, -2, std::move(result)});
        break;
      }
    }
    if (trace_ops) {
      std::fprintf(stderr, "[fuzz] rank %d e%u %s done\n", rank, op.event,
                   op_kind_name(op.kind));
    }
  }
}

}  // namespace

ExecutionOutcome execute(const Program& p) {
  ExecutionOutcome out;
  out.obs.assign(static_cast<std::size_t>(p.nranks), {});
  // Interpreter state lives here, not in the rank lambda: a rank killed by
  // fault injection unwinds with irecv/isend requests still pending, and a
  // peer may deliver into (or borrow from) those buffers after the dead
  // rank's frame is gone.  Keeping them alive until run() joins every
  // thread makes rank death memory-safe.
  std::vector<RankInterp> states(static_cast<std::size_t>(p.nranks));
  try {
    out.result = minimpi::run(
        p.nranks,
        [&](minimpi::Comm& comm) {
          const auto r = static_cast<std::size_t>(comm.rank());
          run_rank(p, comm, states[r], out.obs[r]);
        },
        p.options);
    out.ran = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

}  // namespace dipdc::fuzz
