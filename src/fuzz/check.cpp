#include "fuzz/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "minimpi/backend.hpp"

namespace dipdc::fuzz {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t h = kFnvOffset) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_str(const std::string& s) {
  return fnv1a(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

std::string hex_bytes(const std::vector<std::uint8_t>& v, std::size_t max) {
  std::ostringstream os;
  char b[4];
  for (std::size_t i = 0; i < std::min(v.size(), max); ++i) {
    std::snprintf(b, sizeof b, "%02x", v[i]);
    os << b;
  }
  if (v.size() > max) os << "...";
  return os.str();
}

class Checker {
 public:
  Checker(const Program& p, const Expectation& e, const ExecutionOutcome& out)
      : p_(p), e_(e), out_(out) {}

  CheckResult run() {
    if (e_.expect_kill) {
      check_expected_kill();
      return std::move(r_);
    }
    if (!out_.ran) {
      // "retry budget exhausted" is NOT excused: the generator arms 64
      // retries under drop plans, so genuine exhaustion has probability
      // ~drop^65 — an exhausted budget means a frame was displaced and its
      // sender never acknowledged (a real delivery bug).
      fail("run aborted unexpectedly: " + out_.error);
      return std::move(r_);
    }
    check_calls();
    check_trace();
    check_sim_accounting();
    if (e_.exact_p2p) {
      check_p2p_totals();
      check_channels();
    }
    check_reliable_counters();
    check_observations();
    return std::move(r_);
  }

 private:
  template <typename... Parts>
  void fail(Parts&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    r_.ok = false;
    r_.failures.push_back(os.str());
  }

  void check_expected_kill() {
    if (out_.ran) {
      fail("expected rank ", e_.killed_rank,
           " to be killed by fault injection, but the run completed");
      return;
    }
    if (out_.error.find("killed by fault injection") == std::string::npos) {
      fail("expected a fault-injection kill, got: ", out_.error);
    }
  }

  void check_calls() {
    for (int r = 0; r < p_.nranks; ++r) {
      const auto& got =
          out_.result.rank_stats[static_cast<std::size_t>(r)].calls;
      const auto& want = e_.calls[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (got[i] != want[i]) {
          fail("rank ", r, ": ",
               minimpi::primitive_name(static_cast<minimpi::Primitive>(i)),
               " called ", got[i], " times, oracle expected ", want[i]);
        }
      }
    }
  }

  void check_trace() {
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(p_.nranks), 0);
    std::vector<const minimpi::TraceEvent*> prev(
        static_cast<std::size_t>(p_.nranks), nullptr);
    for (const minimpi::TraceEvent& ev : out_.result.trace) {
      if (ev.rank < 0 || ev.rank >= p_.nranks) {
        fail("trace event with out-of-range rank ", ev.rank);
        continue;
      }
      // The oracle models user primitives only; compute/idle/phase spans
      // (op < 0) are extra observability events.  Phase spans are also
      // emitted at phase_end with the phase's *start* time, so they are
      // exempt from the per-lane monotonicity check too.
      if (ev.op < 0) continue;
      const auto r = static_cast<std::size_t>(ev.rank);
      ++counts[r];
      if (ev.t_end < ev.t_start) {
        fail("rank ", ev.rank, ": trace event ends before it starts (",
             ev.t_start, " .. ", ev.t_end, ")");
      }
      if (prev[r] != nullptr &&
          ev.t_start < prev[r]->t_start - 1e-12) {
        fail("rank ", ev.rank, ": trace start times not monotonic (",
             prev[r]->t_start, " then ", ev.t_start, ")");
      }
      prev[r] = &ev;
    }
    for (int r = 0; r < p_.nranks; ++r) {
      if (counts[static_cast<std::size_t>(r)] !=
          e_.trace_events[static_cast<std::size_t>(r)]) {
        fail("rank ", r, ": ", counts[static_cast<std::size_t>(r)],
             " trace events, oracle expected ",
             e_.trace_events[static_cast<std::size_t>(r)]);
      }
    }
  }

  void check_sim_accounting() {
    for (int r = 0; r < p_.nranks; ++r) {
      const auto& st = out_.result.rank_stats[static_cast<std::size_t>(r)];
      const double clock = out_.result.sim_times[static_cast<std::size_t>(r)];
      const double buckets = st.sim_compute_seconds + st.sim_comm_seconds +
                             st.sim_idle_seconds;
      if (std::abs(clock - buckets) > 1e-9 * std::max(1.0, clock)) {
        fail("rank ", r, ": sim clock ", clock,
             " != compute+comm+idle buckets ", buckets);
      }
      if (clock < 0.0) fail("rank ", r, ": negative sim clock ", clock);
    }
  }

  void check_p2p_totals() {
    for (int r = 0; r < p_.nranks; ++r) {
      const auto& st = out_.result.rank_stats[static_cast<std::size_t>(r)];
      const auto& want = e_.p2p[static_cast<std::size_t>(r)];
      const std::uint64_t got[4] = {st.p2p_bytes_sent, st.p2p_messages_sent,
                                    st.p2p_bytes_received,
                                    st.p2p_messages_received};
      static const char* kNames[4] = {"p2p bytes sent", "p2p messages sent",
                                      "p2p bytes received",
                                      "p2p messages received"};
      for (int i = 0; i < 4; ++i) {
        if (got[i] != want[static_cast<std::size_t>(i)]) {
          fail("rank ", r, ": ", kNames[i], " = ", got[i],
               ", oracle expected ", want[static_cast<std::size_t>(i)]);
        }
      }
    }
  }

  void check_channels() {
    std::map<std::pair<int, int>, const minimpi::ChannelTraffic*> got;
    for (const minimpi::ChannelTraffic& t : out_.result.channels) {
      got[{t.src, t.dst}] = &t;
      if (t.bytes_sent != t.bytes_received ||
          t.messages_sent != t.messages_received) {
        fail("channel ", t.src, "->", t.dst, ": sent ", t.bytes_sent, "B/",
             t.messages_sent, "msg but received ", t.bytes_received, "B/",
             t.messages_received, "msg");
      }
    }
    for (const auto& [key, want] : e_.channels) {
      auto it = got.find(key);
      if (it == got.end()) {
        fail("channel ", key.first, "->", key.second,
             " missing from run result");
        continue;
      }
      if (it->second->bytes_sent != want.bytes ||
          it->second->messages_sent != want.messages) {
        fail("channel ", key.first, "->", key.second, ": ",
             it->second->bytes_sent, "B/", it->second->messages_sent,
             "msg, oracle expected ", want.bytes, "B/", want.messages, "msg");
      }
    }
    for (const auto& [key, t] : got) {
      if (!e_.channels.count(key) &&
          (t->bytes_sent || t->messages_sent || t->bytes_received ||
           t->messages_received)) {
        fail("unexpected traffic on channel ", key.first, "->", key.second);
      }
    }
  }

  void check_reliable_counters() {
    const bool drops = p_.options.faults.drop_prob > 0;
    for (int r = 0; r < p_.nranks; ++r) {
      const auto& st = out_.result.rank_stats[static_cast<std::size_t>(r)];
      if (st.reliable_retries != st.reliable_timeouts) {
        fail("rank ", r, ": ", st.reliable_retries, " retries but ",
             st.reliable_timeouts, " ack timeouts");
      }
      if (!drops && st.reliable_retries != 0) {
        fail("rank ", r, ": ", st.reliable_retries,
             " reliable retries without an armed drop plan");
      }
    }
  }

  void check_observations() {
    for (int r = 0; r < p_.nranks; ++r) {
      const auto& got = out_.obs[static_cast<std::size_t>(r)];
      const auto& want = e_.obs[static_cast<std::size_t>(r)];
      if (got.size() != want.size()) {
        fail("rank ", r, ": ", got.size(), " observations, oracle expected ",
             want.size());
        continue;
      }
      // Any-source windows: each sender must be matched exactly once per
      // (event) group.
      std::map<std::uint32_t, std::set<int>> window_sources;
      for (std::size_t i = 0; i < got.size(); ++i) {
        const Observation& g = got[i];
        const ExpectObs& w = want[i];
        if (g.event != w.event || g.kind != w.kind) {
          fail("rank ", r, " obs ", i, ": saw e", g.event, " ",
               op_kind_name(g.kind), ", oracle expected e", w.event, " ",
               op_kind_name(w.kind));
          continue;
        }
        if (w.window) {
          const auto it =
              std::find(w.wsources.begin(), w.wsources.end(), g.source);
          if (it == w.wsources.end()) {
            fail("rank ", r, " e", g.event,
                 ": any-source recv matched source ", g.source,
                 " which is not a window sender");
            continue;
          }
          const auto idx =
              static_cast<std::size_t>(it - w.wsources.begin());
          if (g.bytes != w.wbytes[idx]) {
            fail("rank ", r, " e", g.event, ": payload from source ",
                 g.source, " corrupted (got ", hex_bytes(g.bytes, 16),
                 ", want ", hex_bytes(w.wbytes[idx], 16), ")");
          }
          if (!window_sources[g.event].insert(g.source).second) {
            fail("rank ", r, " e", g.event, ": source ", g.source,
                 " matched twice in one any-source window");
          }
          continue;
        }
        if (w.source != -2 && g.source != w.source) {
          fail("rank ", r, " e", g.event, " ", op_kind_name(g.kind),
               ": matched source ", g.source, ", oracle expected ", w.source);
        }
        if (w.tag != -2 && g.tag != w.tag) {
          fail("rank ", r, " e", g.event, " ", op_kind_name(g.kind),
               ": matched tag ", g.tag, ", oracle expected ", w.tag);
        }
        if (g.bytes != w.bytes) {
          fail("rank ", r, " e", g.event, " ", op_kind_name(g.kind),
               ": payload mismatch (", g.bytes.size(), "B got ",
               hex_bytes(g.bytes, 16), ", ", w.bytes.size(), "B want ",
               hex_bytes(w.bytes, 16), ")");
        }
      }
    }
  }

  const Program& p_;
  const Expectation& e_;
  const ExecutionOutcome& out_;
  CheckResult r_;
};

}  // namespace

std::string CheckResult::summary(std::size_t max_lines) const {
  if (ok) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < std::min(failures.size(), max_lines); ++i) {
    os << failures[i] << "\n";
  }
  if (failures.size() > max_lines) {
    os << "... (" << failures.size() - max_lines << " more)\n";
  }
  return os.str();
}

CheckResult check(const Program& p, const Expectation& e,
                  const ExecutionOutcome& out) {
  return Checker(p, e, out).run();
}

CheckResult check(const Program& p, const ExecutionOutcome& out) {
  const Expectation e = oracle(p);
  return check(p, e, out);
}

std::string BackendEquivalence::summary(std::size_t max_lines) const {
  if (ok) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < std::min(failures.size(), max_lines); ++i) {
    os << failures[i] << "\n";
  }
  if (failures.size() > max_lines) {
    os << "... (" << failures.size() - max_lines << " more)\n";
  }
  return os.str();
}

BackendEquivalence check_across_backends(const Program& p, bool skip_shm) {
  const Expectation e = oracle(p);
  const minimpi::FaultOptions& f = p.options.faults;
  const bool lossy = f.drop_prob > 0.0 || f.dup_prob > 0.0;
  const bool kills = f.kill_rank >= 0 && f.kill_at_call > 0;
  const bool compare_digests = !lossy && !kills;

  BackendEquivalence eq;
  eq.digests.resize(3);
  std::string threads_digest;
  for (const minimpi::BackendKind kind :
       {minimpi::BackendKind::kThreads, minimpi::BackendKind::kShm,
        minimpi::BackendKind::kTcp}) {
    if (skip_shm && kind == minimpi::BackendKind::kShm) continue;
    Program variant = p;
    variant.options.backend.kind = kind;
    const ExecutionOutcome out = execute(variant);
    const CheckResult res = check(variant, e, out);
    const char* name = minimpi::to_string(kind);
    for (const std::string& fail : res.failures) {
      eq.ok = false;
      eq.failures.push_back(std::string(name) + ": " + fail);
    }
    const std::string d = digest(variant, e, out);
    eq.digests[static_cast<std::size_t>(kind)] = d;
    if (kind == minimpi::BackendKind::kThreads) {
      threads_digest = d;
    } else if (compare_digests && d != threads_digest) {
      eq.ok = false;
      eq.failures.push_back(std::string(name) + ": outcome digest " + d +
                            " differs from threads digest " +
                            threads_digest);
    }
  }
  return eq;
}

std::string digest(const Program& p, const Expectation& e,
                   const ExecutionOutcome& out) {
  std::ostringstream os;
  os << "ran=" << out.ran << ";err=" << fnv1a_str(out.error) << ";";
  // Any-source matches and posted-irecv windows account simulated time in
  // real-schedule order, so their clocks are not reproducible; everything
  // else in the digest still is.
  const bool stable_timing = !p.has_any_source_window() &&
                             !p.has_racy_irecv_window() &&
                             !p.has_icollective();
  if (out.ran) {
    for (int r = 0; r < p.nranks; ++r) {
      const auto& st = out.result.rank_stats[static_cast<std::size_t>(r)];
      os << "r" << r << ":c=";
      for (const std::uint64_t c : st.calls) os << c << ",";
      os << ";p2p=" << st.p2p_bytes_sent << "," << st.p2p_messages_sent
         << "," << st.p2p_bytes_received << "," << st.p2p_messages_received;
      if (stable_timing) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g",
                      out.result.sim_times[static_cast<std::size_t>(r)]);
        os << ";t=" << buf;
        os << ";f=" << st.fault_drops << "," << st.fault_dups << ","
           << st.fault_delays << "," << st.reliable_retries << ","
           << st.reliable_timeouts << "," << st.reliable_duplicates;
      }
      os << ";";
    }
    for (const minimpi::ChannelTraffic& t : out.result.channels) {
      os << "ch" << t.src << ">" << t.dst << "=" << t.bytes_sent << ","
         << t.messages_sent << "," << t.bytes_received << ","
         << t.messages_received << ";";
    }
  }
  // Observations: canonicalise any-source window groups by sorting each
  // group's (source, payload hash) pairs.
  for (int r = 0; r < p.nranks; ++r) {
    const auto& obs = out.obs[static_cast<std::size_t>(r)];
    const auto& want = e.obs[static_cast<std::size_t>(r)];
    std::map<std::uint32_t, std::vector<std::pair<int, std::uint64_t>>>
        windows;
    os << "o" << r << "=";
    for (std::size_t i = 0; i < obs.size(); ++i) {
      const Observation& g = obs[i];
      const std::uint64_t h = fnv1a(g.bytes.data(), g.bytes.size());
      const bool window = i < want.size() && want[i].window;
      if (window) {
        windows[g.event].push_back({g.source, h});
      } else {
        os << g.event << "/" << g.source << "/" << g.tag << "/" << h << ",";
      }
    }
    for (auto& [event, entries] : windows) {
      std::sort(entries.begin(), entries.end());
      os << "w" << event << "[";
      for (const auto& [src, h] : entries) os << src << "/" << h << ",";
      os << "]";
    }
    os << ";";
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a_str(os.str())));
  if (std::getenv("DIPDC_FUZZ_DIGEST_DUMP") != nullptr) {
    std::fprintf(stderr, "DIGEST %s %s\n%s\n",
                 minimpi::to_string(p.options.backend.kind), buf,
                 os.str().c_str());
  }
  return buf;
}

}  // namespace dipdc::fuzz
