// mpifuzz shrinker: ddmin over event ids.
//
// A failing program is minimised by repeatedly removing chunks of events
// (filter_events applies the communicator dependency closure, so candidates
// are always valid programs) and keeping any removal that still fails the
// caller's predicate.  Because flaky bugs (e.g. wildcard-matching races)
// may pass by luck, the predicate is free to run a candidate several times
// and report "fails" if any run fails.
//
// The result replays from the seed alone: the minimised program is
// regenerate(seed) + filter_events(kept_events) (+ faults cleared when the
// shrinker proved the fault plan irrelevant).
#pragma once

#include <cstdint>
#include <functional>

#include "fuzz/program.hpp"

namespace dipdc::fuzz {

/// Returns true when the candidate program still exhibits the failure.
using FailPred = std::function<bool(const Program&)>;

struct ShrinkResult {
  Program program;
  /// The shrinker removed the fault plan entirely (program.fault_spec is
  /// cleared; record this in seed files so replay clears it too).
  bool faults_dropped = false;
  int evaluations = 0;  // predicate invocations spent
};

struct ShrinkOptions {
  /// Abort minimisation after this many predicate evaluations (each one
  /// typically executes the program once or more).
  int max_evaluations = 400;
};

/// Minimises `full` under `fails`.  `fails(full)` is assumed true (callers
/// verify before shrinking); the returned program is guaranteed to fail the
/// predicate and to be 1-minimal at event granularity up to the evaluation
/// budget (removing any single remaining event makes it pass or was not
/// affordable to try).
[[nodiscard]] ShrinkResult shrink(const Program& full, const FailPred& fails,
                                  const ShrinkOptions& opt = {});

}  // namespace dipdc::fuzz
