// Deterministic payload content for mpifuzz programs.
//
// Every payload in a generated program is a pure function of (program seed,
// content id), so the executor, the sequential oracle, and emitted C++
// repros can all materialise identical bytes without shipping data around.
// Content ids are assigned by the generator: one per point-to-point message
// (`Op::msg`) and one per (event, contributing member) for collectives.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/rng.hpp"

namespace dipdc::fuzz {

/// `n` pseudorandom bytes for point-to-point message `msg_id`.
inline std::vector<std::uint8_t> message_bytes(std::uint64_t seed,
                                               std::uint64_t msg_id,
                                               std::size_t n) {
  support::Xoshiro256 rng = support::make_stream(seed ^ 0x4D5347ull, msg_id);
  std::vector<std::uint8_t> out(n);
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t word = rng();
    const std::size_t take = std::min<std::size_t>(8, n - i);
    std::memcpy(out.data() + i, &word, take);
    i += take;
  }
  return out;
}

/// The std::uint64_t vector rank `member` contributes to the collective at
/// `event` (reductions and 8-byte movement collectives).
inline std::vector<std::uint64_t> collective_words(std::uint64_t seed,
                                                   std::uint64_t event,
                                                   int member,
                                                   std::size_t n) {
  support::Xoshiro256 rng = support::make_stream(
      seed ^ 0xC011EC7ull, (event << 16) | static_cast<std::uint64_t>(member));
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t& w : out) w = rng();
  return out;
}

/// Byte-element variant for elem_size == 1 movement collectives.
inline std::vector<std::uint8_t> collective_bytes(std::uint64_t seed,
                                                  std::uint64_t event,
                                                  int member, std::size_t n) {
  const std::vector<std::uint64_t> words =
      collective_words(seed, event, member, (n + 7) / 8);
  std::vector<std::uint8_t> out(n);
  if (n > 0) std::memcpy(out.data(), words.data(), n);
  return out;
}

}  // namespace dipdc::fuzz
