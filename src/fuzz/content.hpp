// Deterministic payload content for mpifuzz programs.
//
// Every payload in a generated program is a pure function of (program seed,
// content id), so the executor, the sequential oracle, and emitted C++
// repros can all materialise identical bytes without shipping data around.
// Content ids are assigned by the generator: one per point-to-point message
// (`Op::msg`) and one per (event, contributing member) for collectives.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/rng.hpp"

namespace dipdc::fuzz {

/// `n` pseudorandom bytes for point-to-point message `msg_id`.
inline std::vector<std::uint8_t> message_bytes(std::uint64_t seed,
                                               std::uint64_t msg_id,
                                               std::size_t n) {
  support::Xoshiro256 rng = support::make_stream(seed ^ 0x4D5347ull, msg_id);
  std::vector<std::uint8_t> out(n);
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t word = rng();
    const std::size_t take = std::min<std::size_t>(8, n - i);
    std::memcpy(out.data() + i, &word, take);
    i += take;
  }
  return out;
}

/// The std::uint64_t vector rank `member` contributes to the collective at
/// `event` (reductions and 8-byte movement collectives).
inline std::vector<std::uint64_t> collective_words(std::uint64_t seed,
                                                   std::uint64_t event,
                                                   int member,
                                                   std::size_t n) {
  support::Xoshiro256 rng = support::make_stream(
      seed ^ 0xC011EC7ull, (event << 16) | static_cast<std::uint64_t>(member));
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t& w : out) w = rng();
  return out;
}

/// Byte-element variant for elem_size == 1 movement collectives.
inline std::vector<std::uint8_t> collective_bytes(std::uint64_t seed,
                                                  std::uint64_t event,
                                                  int member, std::size_t n) {
  const std::vector<std::uint64_t> words =
      collective_words(seed, event, member, (n + 7) / 8);
  std::vector<std::uint8_t> out(n);
  if (n > 0) std::memcpy(out.data(), words.data(), n);
  return out;
}

/// The value of global element `index` of fuzz container `cid`.  A pure
/// function of (seed, cid, index): repartitions move elements without
/// changing them, so any rank's slab after any exchange sequence is exactly
/// these words at its owned global range.
inline std::uint64_t container_word(std::uint64_t seed, int cid,
                                    std::uint64_t index) {
  support::Xoshiro256 rng = support::make_stream(
      seed ^ 0xC047ull,
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cid)) << 40) |
          index);
  return rng();
}

/// Rank `rank`'s slab under the equal-count block partitioning of `total`
/// elements over `parts` ranks (the Container::from_local startup layout:
/// total/parts each, the first total%parts ranks one extra).
inline std::vector<std::uint64_t> container_block(std::uint64_t seed, int cid,
                                                  std::uint64_t total,
                                                  int parts, int rank) {
  const std::uint64_t base = total / static_cast<std::uint64_t>(parts);
  const std::uint64_t extra = total % static_cast<std::uint64_t>(parts);
  const auto r = static_cast<std::uint64_t>(rank);
  const std::uint64_t begin = r * base + std::min(r, extra);
  const std::uint64_t count = base + (r < extra ? 1 : 0);
  std::vector<std::uint64_t> out(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out[i] = container_word(seed, cid, begin + i);
  }
  return out;
}

/// The 16-byte observation a kContainerRepartition op records: FNV-1a over
/// the post-exchange cut vector, then over the rank's local slab.  Shared
/// by the executor (hashing the live container) and the oracle (hashing the
/// sequentially simulated state).
inline std::vector<std::uint8_t> container_obs(
    const std::vector<std::size_t>& cuts,
    const std::vector<std::uint64_t>& slab) {
  auto fnv = [](const void* data, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
    return h;
  };
  const std::uint64_t hc = fnv(cuts.data(), cuts.size() * sizeof(std::size_t));
  const std::uint64_t hs = fnv(slab.data(), slab.size() * sizeof(std::uint64_t));
  std::vector<std::uint8_t> out(16);
  std::memcpy(out.data(), &hc, 8);
  std::memcpy(out.data() + 8, &hs, 8);
  return out;
}

}  // namespace dipdc::fuzz
