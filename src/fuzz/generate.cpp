#include "fuzz/generate.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "minimpi/faults.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dipdc::fuzz {

namespace {

/// Re-serialises a fault plan so Program::fault_spec always matches
/// Program::options (the generator may clamp kill ranks after parsing).
std::string format_fault_spec(const minimpi::FaultOptions& f,
                              const minimpi::ReliableOptions& rel) {
  std::ostringstream os;
  const char* sep = "";
  auto clause = [&](auto&&... parts) {
    os << sep;
    (os << ... << parts);
    sep = ",";
  };
  if (f.drop_prob > 0) clause("drop=", f.drop_prob);
  if (f.dup_prob > 0) clause("dup=", f.dup_prob);
  if (f.delay_prob > 0) clause("delay=", f.delay_prob, ":", f.delay_seconds);
  if (f.kill_rank >= 0) clause("kill=", f.kill_rank, "@", f.kill_at_call);
  if (os.tellp() == 0) return "";
  clause("retries=", rel.max_retries);
  clause("timeout=", rel.timeout_seconds);
  return os.str();
}

/// Per-rank bookkeeping for non-blocking requests.
struct SlotState {
  std::set<int> free;  // free request slots, lowest first
  SlotState() {
    for (int i = 0; i < 16; ++i) free.insert(i);
  }
};

struct PendingWait {
  int rank = 0;
  int slot = 0;
  int comm = 0;
  std::uint32_t event = 0;  // the owning isend/irecv event (shared id)
  std::uint32_t due = 0;    // flush at the first event >= due
};

class Generator {
 public:
  Generator(std::uint64_t seed, const GenConfig& cfg)
      : cfg_(cfg), rng_(support::make_stream(seed, 0xF0CC)) {
    p_.seed = seed;
    p_.fault_seed = cfg.fault_seed ? cfg.fault_seed : seed ^ 0xFA017ull;
  }

  Program run() {
    setup_world();
    setup_options();
    setup_faults();
    slots_.resize(static_cast<std::size_t>(p_.nranks));
    const auto target = static_cast<std::uint32_t>(cfg_.target_events);
    for (event_ = 0; event_ < target; ++event_) {
      flush_due_waits(event_);
      emit_event();
    }
    flush_due_waits(~0u);
    p_.num_events = event_;
    return std::move(p_);
  }

 private:
  // ---- setup --------------------------------------------------------------

  void setup_world() {
    const int lo = 2;
    const int hi = std::max(lo, cfg_.max_ranks);
    p_.nranks = lo + static_cast<int>(rng_.uniform_index(
                         static_cast<std::size_t>(hi - lo + 1)));
    CommInfo world;
    world.id = 0;
    world.parent = -1;
    world.members.resize(static_cast<std::size_t>(p_.nranks));
    for (int r = 0; r < p_.nranks; ++r) {
      world.members[static_cast<std::size_t>(r)] = r;
    }
    p_.comms.push_back(std::move(world));
    p_.ops.assign(static_cast<std::size_t>(p_.nranks), {});
  }

  void setup_options() {
    minimpi::RuntimeOptions& o = p_.options;
    o.record_trace = true;
    o.record_channels = true;
    // Exercise the full matrix of transport and collective code paths.
    const std::size_t et = rng_.uniform_index(3);
    o.eager_threshold = et == 0 ? 48 : et == 1 ? 512 : 64 * 1024;
    using CA = minimpi::CollectiveAlgorithm;
    const CA scatter_algos[] = {CA::kAuto, CA::kClassic, CA::kTree};
    const CA allreduce_algos[] = {CA::kAuto, CA::kClassic,
                                  CA::kRecursiveDoubling, CA::kRing};
    const CA allgather_algos[] = {CA::kAuto, CA::kClassic, CA::kRing};
    o.collectives.scatter = scatter_algos[rng_.uniform_index(3)];
    o.collectives.gather = scatter_algos[rng_.uniform_index(3)];
    o.collectives.allreduce = allreduce_algos[rng_.uniform_index(4)];
    o.collectives.allgather = allgather_algos[rng_.uniform_index(3)];
  }

  void setup_faults() {
    std::string spec = cfg_.fault_spec;
    if (spec == "auto") {
      std::ostringstream os;
      const char* sep = "";
      if (rng_.uniform() < 0.35) {
        os << "drop=" << (rng_.uniform() < 0.5 ? 0.05 : 0.2);
        sep = ",";
      }
      if (rng_.uniform() < 0.35) {
        os << sep << "dup=" << (rng_.uniform() < 0.5 ? 0.05 : 0.2);
        sep = ",";
      }
      if (rng_.uniform() < 0.4) {
        os << sep << "delay=" << (rng_.uniform() < 0.5 ? 0.1 : 0.3)
           << ":1e-5";
        sep = ",";
      }
      if (rng_.uniform() < 0.2) {
        os << sep << "kill="
           << rng_.uniform_index(static_cast<std::size_t>(p_.nranks)) << "@"
           << 1 + rng_.uniform_index(40);
      }
      spec = os.str();
    }
    if (spec.empty()) {
      p_.fault_spec.clear();
      return;
    }
    minimpi::parse_fault_spec(spec, p_.options.faults, p_.options.reliable);
    minimpi::FaultOptions& f = p_.options.faults;
    if (f.kill_rank >= p_.nranks) f.kill_rank %= p_.nranks;
    if (f.drop_prob > 0) {
      // A generous budget makes "retry budget exhausted" practically
      // impossible, so every failure the fuzzer reports is a real mismatch.
      p_.options.reliable.max_retries = 64;
    }
    f.seed = p_.fault_seed;
    p_.fault_spec = format_fault_spec(f, p_.options.reliable);
  }

  // ---- event emission -----------------------------------------------------

  [[nodiscard]] bool lossy() const {
    const minimpi::FaultOptions& f = p_.options.faults;
    return f.drop_prob > 0 || f.dup_prob > 0;
  }

  [[nodiscard]] int base_tag() const {
    return 1 + static_cast<int>(event_) * 8;
  }

  [[nodiscard]] std::uint64_t msg_id(int k) const {
    return (static_cast<std::uint64_t>(event_) << 4) |
           static_cast<std::uint64_t>(k);
  }

  [[nodiscard]] std::uint32_t draw_bytes() {
    switch (rng_.uniform_index(4)) {
      case 0: return static_cast<std::uint32_t>(rng_.uniform_index(65));
      case 1: return static_cast<std::uint32_t>(rng_.uniform_index(257));
      case 2:
        return static_cast<std::uint32_t>(
            rng_.uniform_index(cfg_.max_bytes + 1));
      default: {
        // Straddle the eager/rendezvous boundary.
        const auto et =
            static_cast<std::uint32_t>(p_.options.eager_threshold);
        const std::uint32_t lo = et > 32 ? et - 32 : 0;
        const std::uint32_t w = 64;
        return std::min(cfg_.max_bytes,
                        lo + static_cast<std::uint32_t>(rng_.uniform_index(w)));
      }
    }
  }

  /// A live communicator with at least `min_size` members.
  [[nodiscard]] const CommInfo* pick_comm(std::size_t min_size) {
    std::vector<const CommInfo*> eligible;
    for (const CommInfo& c : p_.comms) {
      if (c.members.size() >= min_size) eligible.push_back(&c);
    }
    if (eligible.empty()) return nullptr;
    return eligible[rng_.uniform_index(eligible.size())];
  }

  std::vector<Op>& ops_of(int world_rank) {
    return p_.ops[static_cast<std::size_t>(world_rank)];
  }

  [[nodiscard]] int alloc_slot(int world_rank) {
    SlotState& s = slots_[static_cast<std::size_t>(world_rank)];
    if (s.free.empty()) return -1;
    const int slot = *s.free.begin();
    s.free.erase(s.free.begin());
    return slot;
  }

  void defer_wait(int world_rank, int slot, int comm) {
    pending_.push_back({world_rank, slot, comm, event_,
                        event_ + 1 + static_cast<std::uint32_t>(
                                         rng_.uniform_index(3))});
  }

  void flush_due_waits(std::uint32_t now) {
    // FIFO per rank: requests are waited in the order they were posted.
    std::vector<PendingWait> later;
    for (const PendingWait& w : pending_) {
      if (w.due > now) {
        later.push_back(w);
        continue;
      }
      Op op;
      op.kind = OpKind::kWait;
      op.event = w.event;
      op.comm = w.comm;
      op.req = w.slot;
      ops_of(w.rank).push_back(op);
      slots_[static_cast<std::size_t>(w.rank)].free.insert(w.slot);
    }
    pending_ = std::move(later);
  }

  void emit_event() {
    // Container events draw first (their own roll, consumed only when the
    // feature is on, so legacy seeds regenerate bit-identically).
    if (cfg_.container_ops && rng_.uniform_index(100) < 22) {
      emit_container();
      return;
    }
    // Icollective events likewise roll only when the feature is on, after
    // the container roll so either flag alone reproduces older streams.
    if (cfg_.icollective_ops && rng_.uniform_index(100) < 20) {
      emit_icollective();
      return;
    }
    // Weighted event-kind draw; a kind that cannot apply (world too small,
    // lossy plan, comm budget) falls through to an exact p2p message.
    const std::size_t roll = rng_.uniform_index(100);
    if (roll < 34) {
      emit_p2p();
    } else if (roll < 46) {
      emit_window();
    } else if (roll < 68) {
      emit_collective();
    } else if (roll < 74) {
      if (lossy()) {
        emit_p2p();  // sendrecv cannot go through the reliable layer
      } else {
        emit_sendrecv();
      }
    } else if (roll < 80) {
      if (p_.comms.size() < 5) {
        emit_split();
      } else {
        emit_collective();
      }
    } else if (roll < 90) {
      emit_sim();
    } else {
      emit_p2p();
    }
  }

  void emit_p2p() {
    const CommInfo* c = pick_comm(2);
    DIPDC_REQUIRE(c != nullptr, "world always has >= 2 ranks");
    const auto pc = c->members.size();
    const int src = static_cast<int>(rng_.uniform_index(pc));
    int dst = static_cast<int>(rng_.uniform_index(pc - 1));
    if (dst >= src) ++dst;
    const int wsrc = c->members[static_cast<std::size_t>(src)];
    const int wdst = c->members[static_cast<std::size_t>(dst)];
    const int tag = base_tag();
    const std::uint32_t bytes = draw_bytes();
    const bool reliable = lossy() || rng_.uniform() < 0.2;

    Op send;
    send.event = event_;
    send.comm = c->id;
    send.peer = dst;
    send.tag = tag;
    send.bytes = bytes;
    send.msg = msg_id(0);
    if (reliable) {
      send.kind = OpKind::kSendReliable;
    } else if (rng_.uniform() < 0.5) {
      const int slot = alloc_slot(wsrc);
      if (slot >= 0) {
        send.kind = OpKind::kIsend;
        send.req = slot;
      } else {
        send.kind = OpKind::kSend;
      }
    } else {
      send.kind = OpKind::kSend;
    }
    ops_of(wsrc).push_back(send);
    if (send.kind == OpKind::kIsend) defer_wait(wsrc, send.req, c->id);

    Op recv;
    recv.event = event_;
    recv.comm = c->id;
    recv.peer = src;
    recv.tag = tag;
    recv.bytes = bytes;
    recv.msg = send.msg;
    recv.expect_source = src;
    recv.expect_tag = tag;
    if (reliable) {
      recv.kind = OpKind::kRecvReliable;
    } else {
      const std::size_t v = rng_.uniform_index(4);
      if (v == 0) {
        recv.kind = OpKind::kProbeRecv;
      } else if (v == 1) {
        const int slot = alloc_slot(wdst);
        if (slot >= 0) {
          recv.kind = OpKind::kIrecv;
          recv.req = slot;
        } else {
          recv.kind = OpKind::kRecv;
        }
      } else {
        recv.kind = OpKind::kRecv;
      }
    }
    ops_of(wdst).push_back(recv);
    if (recv.kind == OpKind::kIrecv) defer_wait(wdst, recv.req, c->id);
  }

  void emit_window() {
    // Any-source windows need >= 2 distinct senders; any-tag needs one.
    // Lossy plans force the any-source form: its exact tag keeps stale
    // reliable frames (retransmissions, duplicates) from earlier events out
    // of the match, whereas a wildcard-*tag* receive would match a lingering
    // frame of the wrong size and abort with a truncation error.
    const bool any_source = lossy() || rng_.uniform() < 0.5;
    const CommInfo* c = pick_comm(any_source ? 3 : 2);
    if (c == nullptr) {
      emit_p2p();
      return;
    }
    const auto pc = c->members.size();
    const int recv_rank = static_cast<int>(rng_.uniform_index(pc));
    const int wrecv = c->members[static_cast<std::size_t>(recv_rank)];
    const bool reliable = lossy() || rng_.uniform() < 0.25;
    const std::uint32_t bytes =
        1 + static_cast<std::uint32_t>(
                rng_.uniform_index(std::min<std::uint32_t>(cfg_.max_bytes,
                                                           512)));

    if (any_source) {
      // k messages with the same (unique) tag from k distinct senders; the
      // receiver accepts them in any order and the checker resolves the
      // multiset by source.
      std::vector<int> senders;
      for (std::size_t i = 0; i < pc; ++i) {
        if (static_cast<int>(i) != recv_rank) {
          senders.push_back(static_cast<int>(i));
        }
      }
      for (std::size_t i = senders.size(); i > 1; --i) {  // Fisher-Yates
        std::swap(senders[i - 1], senders[rng_.uniform_index(i)]);
      }
      const std::size_t k =
          2 + rng_.uniform_index(std::min<std::size_t>(3, senders.size() - 1));
      senders.resize(k);
      const int tag = base_tag();
      std::vector<std::uint64_t> msgs;
      for (std::size_t i = 0; i < k; ++i) {
        msgs.push_back(msg_id(static_cast<int>(i)));
        Op send;
        send.kind = reliable ? OpKind::kSendReliable : OpKind::kSend;
        send.event = event_;
        send.comm = c->id;
        send.peer = recv_rank;
        send.tag = tag;
        send.bytes = bytes;
        send.msg = msgs.back();
        ops_of(c->members[static_cast<std::size_t>(senders[i])])
            .push_back(send);
      }
      for (std::size_t i = 0; i < k; ++i) {
        Op recv;
        recv.kind = reliable ? OpKind::kRecvReliable : OpKind::kRecv;
        recv.event = event_;
        recv.comm = c->id;
        recv.peer = minimpi::kAnySource;
        recv.tag = tag;
        recv.bytes = bytes;
        recv.wsources = senders;
        recv.wmsgs = msgs;
        ops_of(wrecv).push_back(recv);
      }
    } else {
      // One sender, k messages with distinct tags; non-overtaking delivery
      // makes "recv i sees tag base+i" a hard guarantee the wildcard-tag
      // matching must honour.
      int send_rank = static_cast<int>(rng_.uniform_index(pc - 1));
      if (send_rank >= recv_rank) ++send_rank;
      const int wsend = c->members[static_cast<std::size_t>(send_rank)];
      const std::size_t k = 2 + rng_.uniform_index(3);
      for (std::size_t i = 0; i < k; ++i) {
        Op send;
        send.kind = reliable ? OpKind::kSendReliable : OpKind::kSend;
        send.event = event_;
        send.comm = c->id;
        send.peer = recv_rank;
        send.tag = base_tag() + static_cast<int>(i);
        send.bytes = bytes;
        send.msg = msg_id(static_cast<int>(i));
        ops_of(wsend).push_back(send);
      }
      for (std::size_t i = 0; i < k; ++i) {
        Op recv;
        recv.kind = reliable ? OpKind::kRecvReliable : OpKind::kRecv;
        recv.event = event_;
        recv.comm = c->id;
        recv.peer = send_rank;
        recv.tag = minimpi::kAnyTag;
        recv.bytes = bytes;
        recv.msg = msg_id(static_cast<int>(i));
        recv.expect_source = send_rank;
        recv.expect_tag = base_tag() + static_cast<int>(i);
        ops_of(wrecv).push_back(recv);
      }
    }
  }

  void emit_collective() {
    const CommInfo* c = pick_comm(1);
    DIPDC_REQUIRE(c != nullptr, "world comm always exists");
    const auto pc = c->members.size();
    static constexpr OpKind kKinds[] = {
        OpKind::kBarrier,   OpKind::kBcast,     OpKind::kScatter,
        OpKind::kScatterv,  OpKind::kGather,    OpKind::kGatherv,
        OpKind::kAllgather, OpKind::kAllgatherv, OpKind::kReduce,
        OpKind::kAllreduce, OpKind::kScan,      OpKind::kAlltoall,
        OpKind::kAlltoallv,
    };
    Op op;
    op.kind = kKinds[rng_.uniform_index(std::size(kKinds))];
    op.event = event_;
    op.comm = c->id;
    op.root = static_cast<int>(rng_.uniform_index(pc));
    op.elem_size = rng_.uniform() < 0.5 ? 1 : 8;
    op.elems = 1 + static_cast<std::uint32_t>(rng_.uniform_index(64));
    op.rop = static_cast<ReduceKind>(rng_.uniform_index(4));
    switch (op.kind) {
      case OpKind::kReduce:
      case OpKind::kAllreduce:
      case OpKind::kScan:
        op.elem_size = 8;  // reductions operate on std::uint64_t
        break;
      case OpKind::kAlltoall:
        op.elems = 1 + static_cast<std::uint32_t>(rng_.uniform_index(16));
        break;
      case OpKind::kScatterv:
      case OpKind::kGatherv:
      case OpKind::kAllgatherv:
        for (std::size_t i = 0; i < pc; ++i) {
          op.counts.push_back(
              static_cast<std::uint32_t>(rng_.uniform_index(33)));
        }
        break;
      case OpKind::kAlltoallv:
        break;  // per-member rows drawn below
      default:
        break;
    }
    if (op.kind == OpKind::kAlltoallv) {
      // Full count matrix m[i][j]: rank i sends m[i][j] elements to rank j.
      std::vector<std::vector<std::uint32_t>> m(pc);
      for (std::size_t i = 0; i < pc; ++i) {
        for (std::size_t j = 0; j < pc; ++j) {
          m[i].push_back(static_cast<std::uint32_t>(rng_.uniform_index(17)));
        }
      }
      for (std::size_t i = 0; i < pc; ++i) {
        Op mine = op;
        mine.counts = m[i];  // send counts (row)
        for (std::size_t j = 0; j < pc; ++j) {
          mine.counts2.push_back(m[j][i]);  // recv counts (column)
        }
        ops_of(c->members[i]).push_back(mine);
      }
      return;
    }
    for (std::size_t i = 0; i < pc; ++i) {
      ops_of(c->members[i]).push_back(op);
    }
  }

  void emit_icollective() {
    const CommInfo* c = pick_comm(1);
    DIPDC_REQUIRE(c != nullptr, "world comm always exists");
    // The issue needs a request slot on every member; if any member is
    // out, the whole group degrades to a blocking collective (slot
    // availability is generator state, so the choice is deterministic).
    for (const int w : c->members) {
      if (slots_[static_cast<std::size_t>(w)].free.empty()) {
        emit_collective();
        return;
      }
    }
    const auto pc = c->members.size();
    static constexpr OpKind kKinds[] = {
        OpKind::kIbcast, OpKind::kIreduce, OpKind::kIallreduce,
        OpKind::kIallgatherv,
    };
    Op op;
    op.kind = kKinds[rng_.uniform_index(std::size(kKinds))];
    op.event = event_;
    op.comm = c->id;
    op.root = static_cast<int>(rng_.uniform_index(pc));
    op.elem_size = rng_.uniform() < 0.5 ? 1 : 8;
    op.elems = 1 + static_cast<std::uint32_t>(rng_.uniform_index(64));
    op.rop = static_cast<ReduceKind>(rng_.uniform_index(4));
    if (op.kind == OpKind::kIreduce || op.kind == OpKind::kIallreduce) {
      op.elem_size = 8;  // reductions operate on std::uint64_t
    }
    if (op.kind == OpKind::kIallgatherv) {
      for (std::size_t i = 0; i < pc; ++i) {
        op.counts.push_back(
            static_cast<std::uint32_t>(rng_.uniform_index(33)));
      }
    }
    for (std::size_t i = 0; i < pc; ++i) {
      const int w = c->members[i];
      Op mine = op;
      mine.req = alloc_slot(w);
      ops_of(w).push_back(mine);
      // iallreduce is the one kind whose non-root completions depend on
      // another rank's *wait* (comm rank 0's wait combines and fans the
      // result out), not just on the issues.  Scheduling anything blocking
      // for comm rank 0 between its issue and its wait could therefore
      // cycle; pinning that wait to the very next flush keeps the
      // sequential-schedule deadlock argument intact.  Everything else
      // completes from the eager issue-time sends alone.
      if (op.kind == OpKind::kIallreduce && i == 0) {
        pending_.push_back({w, mine.req, c->id, event_, event_ + 1});
      } else {
        defer_wait(w, mine.req, c->id);
      }
    }
  }

  void emit_sendrecv() {
    const CommInfo* c = pick_comm(2);
    DIPDC_REQUIRE(c != nullptr, "world always has >= 2 ranks");
    const auto pc = c->members.size();
    const int a = static_cast<int>(rng_.uniform_index(pc));
    int b = static_cast<int>(rng_.uniform_index(pc - 1));
    if (b >= a) ++b;
    const int tag_ab = base_tag();
    const int tag_ba = base_tag() + 1;
    const std::uint32_t bytes_ab = draw_bytes();
    const std::uint32_t bytes_ba = draw_bytes();
    const std::uint64_t msg_ab = msg_id(0);
    const std::uint64_t msg_ba = msg_id(1);

    Op opa;
    opa.kind = OpKind::kSendrecv;
    opa.event = event_;
    opa.comm = c->id;
    opa.peer = b;
    opa.tag = tag_ab;
    opa.bytes = bytes_ab;
    opa.msg = msg_ab;
    opa.peer2 = b;
    opa.tag2 = tag_ba;
    opa.bytes2 = bytes_ba;
    opa.msg2 = msg_ba;
    opa.expect_source = b;
    opa.expect_tag = tag_ba;
    ops_of(c->members[static_cast<std::size_t>(a)]).push_back(opa);

    Op opb;
    opb.kind = OpKind::kSendrecv;
    opb.event = event_;
    opb.comm = c->id;
    opb.peer = a;
    opb.tag = tag_ba;
    opb.bytes = bytes_ba;
    opb.msg = msg_ba;
    opb.peer2 = a;
    opb.tag2 = tag_ab;
    opb.bytes2 = bytes_ab;
    opb.msg2 = msg_ab;
    opb.expect_source = a;
    opb.expect_tag = tag_ab;
    ops_of(c->members[static_cast<std::size_t>(b)]).push_back(opb);
  }

  void emit_split() {
    const CommInfo* picked = pick_comm(2);
    if (picked == nullptr) {
      emit_collective();
      return;
    }
    // Copy: pushing child comms below reallocates p_.comms.
    const CommInfo parent = *picked;
    const auto pc = parent.members.size();
    const std::size_t ncolors =
        1 + rng_.uniform_index(std::min<std::size_t>(3, pc));
    struct Member {
      int parent_rank;
      int color;
      int key;
    };
    std::vector<Member> members;
    for (std::size_t i = 0; i < pc; ++i) {
      members.push_back({static_cast<int>(i),
                         static_cast<int>(rng_.uniform_index(ncolors)),
                         static_cast<int>(rng_.uniform_index(4))});
    }
    // One child comm per non-empty color, members ordered by (key, parent
    // rank) — mirroring Comm::split()'s ordering rule.
    std::vector<int> result_comm(pc, 0);
    for (std::size_t color = 0; color < ncolors; ++color) {
      std::vector<Member> group;
      for (const Member& m : members) {
        if (m.color == static_cast<int>(color)) group.push_back(m);
      }
      if (group.empty()) continue;
      std::stable_sort(group.begin(), group.end(),
                       [](const Member& x, const Member& y) {
                         return x.key != y.key ? x.key < y.key
                                               : x.parent_rank < y.parent_rank;
                       });
      CommInfo child;
      child.id = static_cast<int>(p_.comms.size());
      child.parent = parent.id;
      child.created_by = event_;
      for (const Member& m : group) {
        child.members.push_back(
            parent.members[static_cast<std::size_t>(m.parent_rank)]);
        result_comm[static_cast<std::size_t>(m.parent_rank)] = child.id;
      }
      p_.comms.push_back(std::move(child));
    }
    for (std::size_t i = 0; i < pc; ++i) {
      Op op;
      op.kind = OpKind::kSplit;
      op.event = event_;
      op.comm = parent.id;
      op.color = members[i].color;
      op.key = members[i].key;
      op.result_comm = result_comm[i];
      ops_of(parent.members[i]).push_back(op);
    }
  }

  void emit_container() {
    // At most three live containers per program; every op is carried by
    // every member of the owning comm (create and repartition because they
    // are collective, set_weight so the owner — wherever the element lives
    // after earlier repartitions — can apply it without the generator
    // mirroring the cut evolution).
    const bool create =
        containers_.empty() ||
        (containers_.size() < 3 && rng_.uniform() < 0.3);
    if (create) {
      const CommInfo* c = pick_comm(1);
      DIPDC_REQUIRE(c != nullptr, "world comm always exists");
      ContainerState st;
      st.id = next_container_++;
      st.comm = c->id;
      st.total = 8 + static_cast<std::uint32_t>(rng_.uniform_index(57));
      Op op;
      op.kind = OpKind::kContainerCreate;
      op.event = event_;
      op.comm = c->id;
      op.color = st.id;
      op.elems = st.total;
      for (const int w : c->members) ops_of(w).push_back(op);
      containers_.push_back(st);
      return;
    }
    const ContainerState& st =
        containers_[rng_.uniform_index(containers_.size())];
    const CommInfo& c = p_.comm_info(st.comm);
    Op op;
    op.event = event_;
    op.comm = st.comm;
    op.color = st.id;
    if (rng_.uniform() < 0.6) {
      op.kind = OpKind::kContainerSetWeight;
      op.msg = rng_.uniform_index(st.total);  // global element index
      op.amount = 0.25 * static_cast<double>(1 + rng_.uniform_index(64));
    } else {
      op.kind = OpKind::kContainerRepartition;
    }
    for (const int w : c.members) ops_of(w).push_back(op);
  }

  void emit_sim() {
    const int rank =
        static_cast<int>(rng_.uniform_index(static_cast<std::size_t>(
            p_.nranks)));
    Op op;
    op.event = event_;
    if (rng_.uniform() < 0.5) {
      op.kind = OpKind::kSimCompute;
      op.amount = 1e3 * static_cast<double>(1 + rng_.uniform_index(1000));
    } else {
      op.kind = OpKind::kSimAdvance;
      op.amount = 1e-6 * static_cast<double>(1 + rng_.uniform_index(1000));
    }
    ops_of(rank).push_back(op);
  }

  struct ContainerState {
    int id = 0;
    int comm = 0;
    std::uint32_t total = 0;
  };

  GenConfig cfg_;
  support::Xoshiro256 rng_;
  Program p_;
  std::uint32_t event_ = 0;
  std::vector<SlotState> slots_;
  std::vector<PendingWait> pending_;
  std::vector<ContainerState> containers_;
  int next_container_ = 1;
};

}  // namespace

Program generate(std::uint64_t seed, const GenConfig& cfg) {
  return Generator(seed, cfg).run();
}

}  // namespace dipdc::fuzz
