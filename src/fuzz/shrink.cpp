#include "fuzz/shrink.hpp"

#include <algorithm>

#include "minimpi/options.hpp"

namespace dipdc::fuzz {

namespace {

std::vector<std::uint32_t> all_events(const Program& p) {
  if (!p.kept_events.empty()) return p.kept_events;
  std::vector<std::uint32_t> events(p.num_events);
  for (std::uint32_t e = 0; e < p.num_events; ++e) events[e] = e;
  return events;
}

Program without_faults(Program p) {
  p.options.faults = minimpi::FaultOptions{};
  p.fault_spec.clear();
  return p;
}

}  // namespace

ShrinkResult shrink(const Program& full, const FailPred& fails,
                    const ShrinkOptions& opt) {
  ShrinkResult res;
  std::vector<std::uint32_t> events = all_events(full);
  Program current = filter_events(full, events);
  events = current.kept_events;

  // Classic ddmin: try removing each of n chunks; on success restart with
  // the reduced set, otherwise double the granularity.
  std::size_t n = 2;
  while (events.size() >= 2 && res.evaluations < opt.max_evaluations) {
    n = std::min(n, events.size());
    bool reduced = false;
    const std::size_t chunk = (events.size() + n - 1) / n;
    for (std::size_t c = 0; c * chunk < events.size(); ++c) {
      std::vector<std::uint32_t> keep;
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (i / chunk != c) keep.push_back(events[i]);
      }
      if (keep.size() == events.size() || keep.empty()) continue;
      Program candidate = filter_events(full, keep);
      if (candidate.kept_events.size() >= events.size()) {
        continue;  // the dependency closure re-added everything we removed
      }
      ++res.evaluations;
      if (fails(candidate)) {
        events = candidate.kept_events;
        current = std::move(candidate);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
      if (res.evaluations >= opt.max_evaluations) break;
    }
    if (!reduced) {
      if (n >= events.size()) break;
      n = std::min(events.size(), n * 2);
    }
  }

  // Cheap post-passes: drop the fault plan if the bug reproduces without
  // it, and drop trailing ranks that no longer own any ops.
  if (!current.fault_spec.empty() &&
      res.evaluations < opt.max_evaluations) {
    Program candidate = without_faults(current);
    ++res.evaluations;
    if (fails(candidate)) {
      current = std::move(candidate);
      res.faults_dropped = true;
    }
  }
  {
    Program trimmed = trim_trailing_ranks(current);
    if (trimmed.nranks < current.nranks &&
        res.evaluations < opt.max_evaluations) {
      ++res.evaluations;
      if (fails(trimmed)) current = std::move(trimmed);
    }
  }

  res.program = std::move(current);
  return res;
}

}  // namespace dipdc::fuzz
