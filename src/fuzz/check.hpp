// mpifuzz checker: diffs an ExecutionOutcome against the sequential
// oracle's Expectation, plus internal-consistency invariants on the run
// itself (trace well-formedness, sim-time accounting, channel symmetry).
#pragma once

#include <string>
#include <vector>

#include "fuzz/execute.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/program.hpp"

namespace dipdc::fuzz {

struct CheckResult {
  bool ok = true;
  std::vector<std::string> failures;

  [[nodiscard]] std::string summary(std::size_t max_lines = 8) const;
};

/// Verifies the outcome against the expectation.  Invariants checked:
///  * kill plans: the run aborts with RankFailedError iff the oracle proves
///    the kill fires; nothing else is checked on expected kills
///  * exact per-rank primitive call counts (CommStats::calls)
///  * one trace event per counted call; per-rank trace times well-formed
///    (t_start <= t_end) and monotonically non-decreasing
///  * per-rank sim clock equals compute + comm + idle buckets (1e-9 rel)
///  * exact user-p2p byte/message totals and per-channel sent == received
///    (only when the fault plan cannot drop or duplicate)
///  * reliable retries == expired ack timeouts; both zero without drops
///  * every receive saw the expected (source, tag, payload); any-source
///    windows resolve by source with each sender matched exactly once
///  * every collective produced the expected result buffer
///
/// A run that aborts with "retry budget exhausted" is a failure even under
/// an armed drop plan: the generator arms 64 retries, so a genuine
/// exhaustion has probability ~drop^65 — in practice it always means a
/// frame was displaced and its sender never acknowledged.
[[nodiscard]] CheckResult check(const Program& p, const Expectation& e,
                                const ExecutionOutcome& out);

/// Convenience: oracle + check in one call.
[[nodiscard]] CheckResult check(const Program& p,
                                const ExecutionOutcome& out);

/// Canonical fingerprint of an outcome, for bit-identical replay checks:
/// calls, p2p totals, channels, and observation payloads.  Any-source
/// window groups are canonicalised by sorting on (source, payload hash);
/// sim times and fault/reliable counters are included only for programs
/// without any-source windows (wildcard arrival order is scheduling-
/// dependent and may shift simulated timing).
[[nodiscard]] std::string digest(const Program& p, const Expectation& e,
                                 const ExecutionOutcome& out);

}  // namespace dipdc::fuzz
