// mpifuzz checker: diffs an ExecutionOutcome against the sequential
// oracle's Expectation, plus internal-consistency invariants on the run
// itself (trace well-formedness, sim-time accounting, channel symmetry).
#pragma once

#include <string>
#include <vector>

#include "fuzz/execute.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/program.hpp"

namespace dipdc::fuzz {

struct CheckResult {
  bool ok = true;
  std::vector<std::string> failures;

  [[nodiscard]] std::string summary(std::size_t max_lines = 8) const;
};

/// Verifies the outcome against the expectation.  Invariants checked:
///  * kill plans: the run aborts with RankFailedError iff the oracle proves
///    the kill fires; nothing else is checked on expected kills
///  * exact per-rank primitive call counts (CommStats::calls)
///  * one trace event per counted call; per-rank trace times well-formed
///    (t_start <= t_end) and monotonically non-decreasing
///  * per-rank sim clock equals compute + comm + idle buckets (1e-9 rel)
///  * exact user-p2p byte/message totals and per-channel sent == received
///    (only when the fault plan cannot drop or duplicate)
///  * reliable retries == expired ack timeouts; both zero without drops
///  * every receive saw the expected (source, tag, payload); any-source
///    windows resolve by source with each sender matched exactly once
///  * every collective produced the expected result buffer
///
/// A run that aborts with "retry budget exhausted" is a failure even under
/// an armed drop plan: the generator arms 64 retries, so a genuine
/// exhaustion has probability ~drop^65 — in practice it always means a
/// frame was displaced and its sender never acknowledged.
[[nodiscard]] CheckResult check(const Program& p, const Expectation& e,
                                const ExecutionOutcome& out);

/// Convenience: oracle + check in one call.
[[nodiscard]] CheckResult check(const Program& p,
                                const ExecutionOutcome& out);

/// Outcome of replaying one program on every transport backend
/// (threads, shm, tcp) and comparing against the threads run.
struct BackendEquivalence {
  bool ok = true;
  /// Failures, each prefixed with the backend that produced it.
  std::vector<std::string> failures;
  /// Per-backend digest, indexed like BackendKind (threads, shm, tcp).
  /// Empty entries mean the backend leg was skipped (see skip_shm).
  std::vector<std::string> digests;

  [[nodiscard]] std::string summary(std::size_t max_lines = 8) const;
};

/// Cross-backend conformance oracle: executes `p` once per backend and
/// requires (a) every leg to pass check() against the sequential oracle
/// and (b) the outcome digests to be bit-identical to the threads leg.
/// Digest equality is only asserted for plans that cannot drop/duplicate
/// or kill — under lossy plans the retry/stall counters inside the digest
/// depend on thread scheduling and differ even between two runs on the
/// SAME backend (each leg still must pass the oracle).  `skip_shm` skips
/// the forked-router backend (used under ThreadSanitizer, which does not
/// support the fork).
[[nodiscard]] BackendEquivalence check_across_backends(const Program& p,
                                                       bool skip_shm = false);

/// Canonical fingerprint of an outcome, for bit-identical replay checks:
/// calls, p2p totals, channels, and observation payloads.  Any-source
/// window groups are canonicalised by sorting on (source, payload hash);
/// sim times and fault/reliable counters are included only for programs
/// without any-source windows (wildcard arrival order is scheduling-
/// dependent and may shift simulated timing).
[[nodiscard]] std::string digest(const Program& p, const Expectation& e,
                                 const ExecutionOutcome& out);

}  // namespace dipdc::fuzz
