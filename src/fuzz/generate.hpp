// mpifuzz program generator: (seed, config) -> random-but-valid Program.
//
// Validity invariants established here (and relied on by the oracle):
//  * Events are globally ordered and each rank's op list follows that order
//    (deferred isend/irecv waits keep their event id but may appear later),
//    so generated programs are deadlock-free by construction.
//  * Every event owns a disjoint tag range (8 tags starting at 1+8*event),
//    so exact-tag matching is unambiguous and wildcard receives can only
//    match their own window's messages.
//  * When the fault plan can drop or duplicate messages, every user p2p
//    operation goes through the reliable-delivery layer (and sendrecv /
//    probe, which cannot, are not generated), so delivery stays exactly-once
//    and the oracle's 1:1 matching remains valid.
//  * Message payloads and collective contributions are pure functions of
//    (seed, content id) — see content.hpp — so replay needs only the seed.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/program.hpp"

namespace dipdc::fuzz {

struct GenConfig {
  int max_ranks = 8;          // world size drawn uniformly from [2, max_ranks]
  int target_events = 40;     // events per program (ops is a few x this)
  std::uint32_t max_bytes = 4096;  // max p2p payload size
  /// "" = fault-free, "auto" = draw a random plan from the seed, otherwise a
  /// parse_fault_spec() string applied verbatim (kill ranks are clamped to
  /// the drawn world size).
  std::string fault_spec;
  /// Fault-injection seed; 0 derives one from the program seed.
  std::uint64_t fault_seed = 0;
  /// Weave elastic-container events (create / set_weight / repartition)
  /// into the program.  Off by default so pre-container seed files
  /// regenerate bit-identically; the dipdc-fuzz driver turns it on.
  bool container_ops = false;
  /// Weave nonblocking collectives (ibcast / ireduce / iallreduce /
  /// iallgatherv with deferred waits) into the program.  Same gating
  /// contract as container_ops: off by default so older seed files
  /// regenerate bit-identically; the dipdc-fuzz driver turns it on.
  bool icollective_ops = false;
};

/// Deterministically generates a program: same (seed, cfg) -> same Program.
[[nodiscard]] Program generate(std::uint64_t seed, const GenConfig& cfg = {});

}  // namespace dipdc::fuzz
