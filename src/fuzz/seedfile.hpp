// mpifuzz seed files: a failure is persisted as the few numbers needed to
// regenerate it — generator seed, fault seed, generator config, and the
// event ids surviving shrinking — never as serialized programs.  Replay is
// therefore immune to program-format drift: materialize() re-runs the
// generator and re-applies the filter.
//
// Format: "key=value" lines, '#' comments, e.g.
//
//   # mpifuzz seed
//   seed=1234
//   fault_seed=99
//   max_ranks=8
//   target_events=40
//   max_bytes=4096
//   fault_spec=drop=0.2,retries=64,timeout=0.001
//   kept=3,17,21
//   ranks=3
//   faults_disabled=1
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generate.hpp"
#include "fuzz/program.hpp"

namespace dipdc::fuzz {

struct SeedSpec {
  std::uint64_t seed = 1;
  GenConfig cfg;
  /// Events to keep (empty = whole program).
  std::vector<std::uint32_t> kept;
  /// Truncate to this many ranks after filtering (0 = keep all); written by
  /// the shrinker's trailing-rank trim.
  int ranks = 0;
  /// The shrinker proved the fault plan irrelevant: generate with it (the
  /// generator's random draws depend on it) but run without it.
  bool faults_disabled = false;

  /// Regenerates the program this spec describes.
  [[nodiscard]] Program materialize() const;
};

/// Captures a program (possibly shrunk) as a replayable spec.
[[nodiscard]] SeedSpec to_seed_spec(const Program& p, const GenConfig& cfg,
                                    bool faults_disabled);

[[nodiscard]] std::string format_seed(const SeedSpec& spec);
void save_seed(const std::string& path, const SeedSpec& spec);

/// Parses a seed file; throws support::Error on malformed input.
[[nodiscard]] SeedSpec parse_seed(const std::string& text);
[[nodiscard]] SeedSpec load_seed(const std::string& path);

}  // namespace dipdc::fuzz
