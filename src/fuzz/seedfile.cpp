#include "fuzz/seedfile.hpp"

#include <fstream>
#include <sstream>

#include "minimpi/options.hpp"
#include "support/error.hpp"

namespace dipdc::fuzz {

Program SeedSpec::materialize() const {
  Program p = generate(seed, cfg);
  if (!kept.empty()) p = filter_events(p, kept);
  if (ranks > 0 && ranks < p.nranks) {
    p.nranks = ranks;
    p.ops.resize(static_cast<std::size_t>(ranks));
  }
  if (faults_disabled) {
    p.options.faults = minimpi::FaultOptions{};
    p.fault_spec.clear();
  }
  return p;
}

SeedSpec to_seed_spec(const Program& p, const GenConfig& cfg,
                      bool faults_disabled) {
  SeedSpec spec;
  spec.seed = p.seed;
  spec.cfg = cfg;
  spec.cfg.fault_seed = p.fault_seed;
  spec.kept = p.kept_events;
  spec.faults_disabled = faults_disabled;
  // Record a trailing-rank trim (materialize() re-applies it).
  const Program regen = generate(p.seed, spec.cfg);
  if (p.nranks < regen.nranks) spec.ranks = p.nranks;
  return spec;
}

std::string format_seed(const SeedSpec& spec) {
  std::ostringstream os;
  os << "# mpifuzz seed\n";
  os << "seed=" << spec.seed << "\n";
  os << "fault_seed=" << spec.cfg.fault_seed << "\n";
  os << "max_ranks=" << spec.cfg.max_ranks << "\n";
  os << "target_events=" << spec.cfg.target_events << "\n";
  os << "max_bytes=" << spec.cfg.max_bytes << "\n";
  // Always written: parse_seed must not fall back to GenConfig's default
  // ("auto"), which would turn a fault-free config into a faulty one.
  os << "fault_spec=" << spec.cfg.fault_spec << "\n";
  // Written only when on: pre-container seed files omit the key and keep
  // regenerating bit-identically with the flag's false default.
  if (spec.cfg.container_ops) os << "container_ops=1\n";
  if (spec.cfg.icollective_ops) os << "icollective_ops=1\n";
  if (!spec.kept.empty()) {
    os << "kept=";
    for (std::size_t i = 0; i < spec.kept.size(); ++i) {
      os << (i ? "," : "") << spec.kept[i];
    }
    os << "\n";
  }
  if (spec.ranks > 0) os << "ranks=" << spec.ranks << "\n";
  if (spec.faults_disabled) os << "faults_disabled=1\n";
  return os.str();
}

void save_seed(const std::string& path, const SeedSpec& spec) {
  std::ofstream out(path);
  DIPDC_REQUIRE(out.good(), "cannot open seed file for writing: " + path);
  out << format_seed(spec);
  DIPDC_REQUIRE(out.good(), "failed writing seed file: " + path);
}

SeedSpec parse_seed(const std::string& text) {
  SeedSpec spec;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    DIPDC_REQUIRE(eq != std::string::npos,
                  "seed file line " + std::to_string(lineno) +
                      " is not key=value: " + line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    try {
      if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "fault_seed") {
        spec.cfg.fault_seed = std::stoull(value);
      } else if (key == "max_ranks") {
        spec.cfg.max_ranks = std::stoi(value);
      } else if (key == "target_events") {
        spec.cfg.target_events = std::stoi(value);
      } else if (key == "max_bytes") {
        spec.cfg.max_bytes = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "fault_spec") {
        spec.cfg.fault_spec = value;
      } else if (key == "container_ops") {
        spec.cfg.container_ops = value != "0";
      } else if (key == "icollective_ops") {
        spec.cfg.icollective_ops = value != "0";
      } else if (key == "kept") {
        std::istringstream vs(value);
        std::string item;
        while (std::getline(vs, item, ',')) {
          if (!item.empty()) {
            spec.kept.push_back(
                static_cast<std::uint32_t>(std::stoul(item)));
          }
        }
      } else if (key == "ranks") {
        spec.ranks = std::stoi(value);
      } else if (key == "faults_disabled") {
        spec.faults_disabled = value != "0";
      } else {
        DIPDC_REQUIRE(false, "unknown seed file key: " + key);
      }
    } catch (const std::invalid_argument&) {
      DIPDC_REQUIRE(false, "seed file line " + std::to_string(lineno) +
                               ": bad number in " + line);
    } catch (const std::out_of_range&) {
      DIPDC_REQUIRE(false, "seed file line " + std::to_string(lineno) +
                               ": number out of range in " + line);
    }
  }
  return spec;
}

SeedSpec load_seed(const std::string& path) {
  std::ifstream in(path);
  DIPDC_REQUIRE(in.good(), "cannot open seed file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_seed(buf.str());
}

}  // namespace dipdc::fuzz
