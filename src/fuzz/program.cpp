#include "fuzz/program.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_set>

#include "support/error.hpp"

namespace dipdc::fuzz {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kSend: return "send";
    case OpKind::kIsend: return "isend";
    case OpKind::kSendReliable: return "send_reliable";
    case OpKind::kRecv: return "recv";
    case OpKind::kIrecv: return "irecv";
    case OpKind::kProbeRecv: return "probe+recv";
    case OpKind::kRecvReliable: return "recv_reliable";
    case OpKind::kWait: return "wait";
    case OpKind::kWaitAll: return "wait_all";
    case OpKind::kSendrecv: return "sendrecv";
    case OpKind::kBarrier: return "barrier";
    case OpKind::kBcast: return "bcast";
    case OpKind::kScatter: return "scatter";
    case OpKind::kScatterv: return "scatterv";
    case OpKind::kGather: return "gather";
    case OpKind::kGatherv: return "gatherv";
    case OpKind::kAllgather: return "allgather";
    case OpKind::kAllgatherv: return "allgatherv";
    case OpKind::kReduce: return "reduce";
    case OpKind::kAllreduce: return "allreduce";
    case OpKind::kScan: return "scan";
    case OpKind::kAlltoall: return "alltoall";
    case OpKind::kAlltoallv: return "alltoallv";
    case OpKind::kSplit: return "split";
    case OpKind::kSimCompute: return "sim_compute";
    case OpKind::kSimAdvance: return "sim_advance";
    case OpKind::kContainerCreate: return "container_create";
    case OpKind::kContainerSetWeight: return "container_set_weight";
    case OpKind::kContainerRepartition: return "container_repartition";
    case OpKind::kIbcast: return "ibcast";
    case OpKind::kIreduce: return "ireduce";
    case OpKind::kIallreduce: return "iallreduce";
    case OpKind::kIallgatherv: return "iallgatherv";
  }
  return "?";
}

std::size_t Program::op_count() const {
  std::size_t n = 0;
  for (const auto& rank_ops : ops) n += rank_ops.size();
  return n;
}

bool Program::has_any_source_window() const {
  for (const auto& rank_ops : ops) {
    for (const Op& op : rank_ops) {
      if ((op.kind == OpKind::kRecv || op.kind == OpKind::kIrecv ||
           op.kind == OpKind::kRecvReliable) &&
          op.peer == minimpi::kAnySource) {
        return true;
      }
    }
  }
  return false;
}

bool Program::has_racy_irecv_window() const {
  for (const auto& rank_ops : ops) {
    std::set<int> posted;  // request slots holding a posted irecv
    for (const Op& op : rank_ops) {
      switch (op.kind) {
        case OpKind::kIrecv:
          posted.insert(op.req);
          // Two posted receives complete in sender real-time order.
          if (posted.size() > 1) return true;
          break;
        case OpKind::kWait:
          posted.erase(op.req);
          break;
        case OpKind::kWaitAll:
          for (int s = op.req; s < op.req + op.nreq; ++s) posted.erase(s);
          break;
        case OpKind::kSend:
        case OpKind::kSendReliable:
        case OpKind::kIsend:
        case OpKind::kSimCompute:
        case OpKind::kSimAdvance:
        case OpKind::kContainerCreate:
        case OpKind::kContainerSetWeight:
          break;  // no receive-side link accounting at this rank's mailbox
        default:
          // Blocking receives, probe, sendrecv, split, collectives and
          // repartition all serialize the ingress link in program order;
          // a concurrently posted irecv accounts at sender-timed delivery
          // instead, so the interleaving (and the simulated clock) depends
          // on the real schedule.
          if (!posted.empty()) return true;
          break;
      }
    }
  }
  return false;
}

bool Program::has_icollective() const {
  for (const auto& rank_ops : ops) {
    for (const Op& op : rank_ops) {
      if (op.kind == OpKind::kIbcast || op.kind == OpKind::kIreduce ||
          op.kind == OpKind::kIallreduce ||
          op.kind == OpKind::kIallgatherv) {
        return true;
      }
    }
  }
  return false;
}

const CommInfo& Program::comm_info(int id) const {
  for (const CommInfo& c : comms) {
    if (c.id == id) return c;
  }
  DIPDC_REQUIRE(false, "unknown communicator id in fuzz program");
  return comms.front();  // unreachable
}

Program filter_events(const Program& full,
                      const std::vector<std::uint32_t>& keep) {
  // Communicator dependency closure: an event touching comm C requires the
  // whole chain of split events that created C (and C's ancestors).  Build
  // comm -> required split events, then iterate to a fixed point because a
  // split event itself operates on the parent comm.  Container ops have the
  // analogous dependency on their kContainerCreate event (which in turn
  // pulls its comm's split chain through the same fixed point).
  std::unordered_set<std::uint32_t> kept(keep.begin(), keep.end());
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_set<int> live_comms;       // comms some kept event touches
    std::unordered_set<int> live_containers;  // container ids likewise
    for (const auto& rank_ops : full.ops) {
      for (const Op& op : rank_ops) {
        if (!kept.count(op.event)) continue;
        live_comms.insert(op.comm);
        if (op.kind == OpKind::kSplit) live_comms.insert(op.result_comm);
        if (op.kind == OpKind::kContainerSetWeight ||
            op.kind == OpKind::kContainerRepartition) {
          live_containers.insert(op.color);
        }
      }
    }
    for (const CommInfo& c : full.comms) {
      if (c.parent < 0 || !live_comms.count(c.id)) continue;
      if (!kept.count(c.created_by)) {
        kept.insert(c.created_by);
        changed = true;
      }
    }
    for (const auto& rank_ops : full.ops) {
      for (const Op& op : rank_ops) {
        if (op.kind != OpKind::kContainerCreate) continue;
        if (!live_containers.count(op.color) || kept.count(op.event)) continue;
        kept.insert(op.event);
        changed = true;
      }
    }
  }

  Program out = full;
  out.ops.assign(static_cast<std::size_t>(full.nranks), {});
  for (int r = 0; r < full.nranks; ++r) {
    for (const Op& op : full.ops[static_cast<std::size_t>(r)]) {
      if (kept.count(op.event)) {
        out.ops[static_cast<std::size_t>(r)].push_back(op);
      }
    }
  }
  out.kept_events.assign(kept.begin(), kept.end());
  std::sort(out.kept_events.begin(), out.kept_events.end());
  return out;
}

Program trim_trailing_ranks(const Program& p) {
  int last = p.nranks - 1;
  const int kill = p.options.faults.kill_rank;
  while (last > 0 && p.ops[static_cast<std::size_t>(last)].empty() &&
         last != kill) {
    --last;
  }
  if (last == p.nranks - 1) return p;
  Program out = p;
  out.nranks = last + 1;
  out.ops.resize(static_cast<std::size_t>(out.nranks));
  return out;
}

namespace {

void describe_op(std::ostringstream& os, const Op& op) {
  os << "e" << op.event << " " << op_kind_name(op.kind);
  if (op.comm != 0) os << " comm" << op.comm;
  switch (op.kind) {
    case OpKind::kSend:
    case OpKind::kIsend:
    case OpKind::kSendReliable:
      os << " dst=" << op.peer << " tag=" << op.tag << " bytes=" << op.bytes;
      if (op.req >= 0) os << " req=" << op.req;
      break;
    case OpKind::kRecv:
    case OpKind::kIrecv:
    case OpKind::kProbeRecv:
    case OpKind::kRecvReliable:
      os << " src=" << (op.peer == minimpi::kAnySource ? "*" :
                        std::to_string(op.peer))
         << " tag=" << (op.tag == minimpi::kAnyTag ? "*" :
                        std::to_string(op.tag))
         << " bytes=" << op.bytes;
      if (op.req >= 0) os << " req=" << op.req;
      break;
    case OpKind::kWait:
      os << " req=" << op.req;
      break;
    case OpKind::kWaitAll:
      os << " req=[" << op.req << ".." << op.req + op.nreq - 1 << "]";
      break;
    case OpKind::kSendrecv:
      os << " dst=" << op.peer << " stag=" << op.tag << " sbytes=" << op.bytes
         << " src=" << op.peer2 << " rtag=" << op.tag2
         << " rbytes=" << op.bytes2;
      break;
    case OpKind::kBcast:
    case OpKind::kScatter:
    case OpKind::kGather:
    case OpKind::kReduce:
      os << " root=" << op.root << " elems=" << op.elems << "x"
         << op.elem_size;
      break;
    case OpKind::kIbcast:
    case OpKind::kIreduce:
      os << " root=" << op.root << " elems=" << op.elems << "x"
         << op.elem_size << " req=" << op.req;
      break;
    case OpKind::kIallreduce:
      os << " elems=" << op.elems << "x" << op.elem_size << " req=" << op.req;
      break;
    case OpKind::kIallgatherv:
      os << " counts=[";
      for (std::size_t i = 0; i < op.counts.size(); ++i) {
        os << (i ? "," : "") << op.counts[i];
      }
      os << "]x" << op.elem_size << " req=" << op.req;
      break;
    case OpKind::kScatterv:
    case OpKind::kGatherv:
    case OpKind::kAllgatherv:
      os << (op.kind == OpKind::kAllgatherv ? "" : " root=")
         << (op.kind == OpKind::kAllgatherv ? "" : std::to_string(op.root))
         << " counts=[";
      for (std::size_t i = 0; i < op.counts.size(); ++i) {
        os << (i ? "," : "") << op.counts[i];
      }
      os << "]x" << op.elem_size;
      break;
    case OpKind::kAllgather:
    case OpKind::kAllreduce:
    case OpKind::kScan:
    case OpKind::kAlltoall:
    case OpKind::kAlltoallv:
      os << " elems=" << op.elems << "x" << op.elem_size;
      break;
    case OpKind::kSplit:
      os << " color=" << op.color << " key=" << op.key << " -> comm"
         << op.result_comm;
      break;
    case OpKind::kSimCompute:
    case OpKind::kSimAdvance:
      os << " amount=" << op.amount;
      break;
    case OpKind::kContainerCreate:
      os << " cid=" << op.color << " total=" << op.elems;
      break;
    case OpKind::kContainerSetWeight:
      os << " cid=" << op.color << " elem=" << op.msg << " w=" << op.amount;
      break;
    case OpKind::kContainerRepartition:
      os << " cid=" << op.color;
      break;
    case OpKind::kBarrier:
      break;
  }
  os << "\n";
}

}  // namespace

std::string describe(const Program& p) {
  std::ostringstream os;
  os << "program seed=" << p.seed << " fault_seed=" << p.fault_seed
     << " ranks=" << p.nranks << " events=" << p.num_events
     << " ops=" << p.op_count();
  if (!p.fault_spec.empty()) os << " faults=\"" << p.fault_spec << "\"";
  if (!p.kept_events.empty()) {
    os << " kept=[";
    for (std::size_t i = 0; i < p.kept_events.size(); ++i) {
      os << (i ? "," : "") << p.kept_events[i];
    }
    os << "]";
  }
  os << "\n";
  for (int r = 0; r < p.nranks; ++r) {
    os << "rank " << r << ":\n";
    for (const Op& op : p.ops[static_cast<std::size_t>(r)]) {
      os << "  ";
      describe_op(os, op);
    }
  }
  return os.str();
}

namespace {

std::string cpp_int(int v) {
  if (v == minimpi::kAnySource) return "minimpi::kAnySource";
  return std::to_string(v);
}

std::string cpp_tag(int v) {
  if (v == minimpi::kAnyTag) return "minimpi::kAnyTag";
  return std::to_string(v);
}

/// Emits the per-rank body of the repro: a switch over comm.rank() with the
/// ops of each rank written against the public minimpi API.
void emit_rank_body(std::ostringstream& os, const Program& p, int rank) {
  const std::string ind = "      ";
  // Map fuzzer comm ids to local variable names: comm 0 is `comm` itself,
  // split results are `c<id>` (std::optional<minimpi::Comm> would not work:
  // Comm is move-only and returned by value, so use plain locals in order).
  auto comm_var = [](int id) {
    if (id == 0) return std::string("comm");
    std::string name = "c";
    name += std::to_string(id);
    return name;
  };
  bool used_req = false;
  bool used_icoll = false;
  for (const Op& op : p.ops[static_cast<std::size_t>(rank)]) {
    if (op.req >= 0 || op.kind == OpKind::kWaitAll) used_req = true;
    if (op.kind == OpKind::kIbcast || op.kind == OpKind::kIreduce ||
        op.kind == OpKind::kIallreduce ||
        op.kind == OpKind::kIallgatherv) {
      used_icoll = true;
    }
  }
  if (used_req) {
    os << ind << "std::vector<minimpi::Request> reqs(16);\n";
  }
  if (used_icoll) {
    os << ind << "std::vector<fuzz::IcollBuffers> ibufs(16);\n";
  }
  for (const Op& op : p.ops[static_cast<std::size_t>(rank)]) {
    const std::string c = comm_var(op.comm) + ".";
    os << ind << "// e" << op.event << "\n";
    switch (op.kind) {
      case OpKind::kSend:
        os << ind << "{ auto m = fuzz::message_bytes(kSeed, " << op.msg
           << "ull, " << op.bytes << ");\n"
           << ind << "  " << c << "send(std::span<const std::uint8_t>(m), "
           << op.peer << ", " << op.tag << "); }\n";
        break;
      case OpKind::kSendReliable:
        os << ind << "{ auto m = fuzz::message_bytes(kSeed, " << op.msg
           << "ull, " << op.bytes << ");\n"
           << ind << "  " << c
           << "send_reliable(std::span<const std::uint8_t>(m), " << op.peer
           << ", " << op.tag << "); }\n";
        break;
      case OpKind::kIsend:
        os << ind << "{ static auto m = fuzz::message_bytes(kSeed, " << op.msg
           << "ull, " << op.bytes << ");\n"
           << ind << "  reqs[" << op.req << "] = " << c
           << "isend(std::span<const std::uint8_t>(m), " << op.peer << ", "
           << op.tag << "); }\n";
        break;
      case OpKind::kRecv:
        os << ind << "{ std::vector<std::uint8_t> m(" << op.bytes << ");\n"
           << ind << "  " << c << "recv(std::span<std::uint8_t>(m), "
           << cpp_int(op.peer) << ", " << cpp_tag(op.tag) << "); }\n";
        break;
      case OpKind::kRecvReliable:
        os << ind << "{ std::vector<std::uint8_t> m(" << op.bytes << ");\n"
           << ind << "  " << c << "recv_reliable(std::span<std::uint8_t>(m), "
           << cpp_int(op.peer) << ", " << cpp_tag(op.tag) << "); }\n";
        break;
      case OpKind::kProbeRecv:
        os << ind << "{ auto st = " << c << "probe(" << cpp_int(op.peer)
           << ", " << cpp_tag(op.tag) << ");\n"
           << ind << "  std::vector<std::uint8_t> m(st.bytes);\n"
           << ind << "  " << c << "recv(std::span<std::uint8_t>(m), "
           << "st.source, st.tag); }\n";
        break;
      case OpKind::kIrecv:
        os << ind << "{ static std::vector<std::uint8_t> m(" << op.bytes
           << ");\n"
           << ind << "  reqs[" << op.req << "] = " << c
           << "irecv(std::span<std::uint8_t>(m), " << cpp_int(op.peer) << ", "
           << cpp_tag(op.tag) << "); }\n";
        break;
      case OpKind::kWait:
        os << ind << comm_var(op.comm) << ".wait(reqs[" << op.req << "]);\n";
        break;
      case OpKind::kWaitAll:
        os << ind << "for (int i = " << op.req << "; i < "
           << op.req + op.nreq << "; ++i) " << comm_var(op.comm)
           << ".wait(reqs[i]);\n";
        break;
      case OpKind::kSendrecv:
        os << ind << "{ auto s = fuzz::message_bytes(kSeed, " << op.msg
           << "ull, " << op.bytes << ");\n"
           << ind << "  std::vector<std::uint8_t> r(" << op.bytes2 << ");\n"
           << ind << "  " << c << "sendrecv(std::span<const std::uint8_t>(s), "
           << op.peer << ", " << op.tag << ", std::span<std::uint8_t>(r), "
           << cpp_int(op.peer2) << ", " << cpp_tag(op.tag2) << "); }\n";
        break;
      case OpKind::kBarrier:
        os << ind << c << "barrier();\n";
        break;
      default:
        // Remaining collectives follow the same pattern; the repro keeps
        // them explicit but compact via the run_collective helper emitted
        // in the preamble.
        os << ind << "run_collective(" << comm_var(op.comm) << ", kSeed, "
           << static_cast<int>(op.kind) << ", " << op.event << "ull, "
           << op.elems << ", " << op.elem_size << ", " << op.root << ", "
           << static_cast<int>(op.rop) << ", {";
        for (std::size_t i = 0; i < op.counts.size(); ++i) {
          os << (i ? "," : "") << op.counts[i];
        }
        os << "}, {";
        for (std::size_t i = 0; i < op.counts2.size(); ++i) {
          os << (i ? "," : "") << op.counts2[i];
        }
        os << "});\n";
        break;
      case OpKind::kSplit:
        os << ind << "minimpi::Comm " << comm_var(op.result_comm) << " = "
           << c << "split(" << op.color << ", " << op.key << ");\n";
        break;
      case OpKind::kSimCompute:
        os << ind << c << "sim_compute(" << op.amount << ", " << op.amount
           << ");\n";
        break;
      case OpKind::kSimAdvance:
        os << ind << c << "sim_advance(" << op.amount << ");\n";
        break;
      case OpKind::kContainerCreate:
        os << ind << "auto k" << op.color
           << " = container::Container<std::uint64_t>::from_local("
           << comm_var(op.comm) << ", " << op.elems << ", 1,\n"
           << ind << "    fuzz::container_block(kSeed, " << op.color << ", "
           << op.elems << ", " << comm_var(op.comm) << ".size(), "
           << comm_var(op.comm) << ".rank()));\n";
        break;
      case OpKind::kContainerSetWeight:
        os << ind << "{ const std::size_t g = " << op.msg << "ull;\n"
           << ind << "  if (g >= k" << op.color << ".global_begin() && g < k"
           << op.color << ".global_begin() + k" << op.color << ".count())\n"
           << ind << "    k" << op.color << ".set_weight(g - k" << op.color
           << ".global_begin(), " << op.amount << "); }\n";
        break;
      case OpKind::kContainerRepartition:
        os << ind << "(void)k" << op.color << ".repartition();\n";
        break;
      case OpKind::kIbcast:
      case OpKind::kIreduce:
      case OpKind::kIallreduce:
      case OpKind::kIallgatherv:
        // Issue through the shared helper; the deferred kWait above
        // completes the slot like any other request.
        os << ind << "reqs[" << op.req << "] = fuzz::issue_icollective("
           << comm_var(op.comm) << ", kSeed, " << static_cast<int>(op.kind)
           << ", " << op.event << "ull, " << op.elems << ", " << op.elem_size
           << ", " << op.root << ", " << static_cast<int>(op.rop) << ", {";
        for (std::size_t i = 0; i < op.counts.size(); ++i) {
          os << (i ? "," : "") << op.counts[i];
        }
        os << "}, ibufs[" << op.req << "]);\n";
        break;
    }
  }
}

}  // namespace

std::string to_cpp(const Program& p) {
  std::ostringstream os;
  os << "// Auto-generated mpifuzz repro: seed=" << p.seed
     << " fault_seed=" << p.fault_seed << " ranks=" << p.nranks;
  if (!p.fault_spec.empty()) os << " faults=\"" << p.fault_spec << "\"";
  bool has_container_ops = false;
  for (const auto& rank_ops : p.ops) {
    for (const Op& op : rank_ops) {
      if (op.kind == OpKind::kContainerCreate ||
          op.kind == OpKind::kContainerSetWeight ||
          op.kind == OpKind::kContainerRepartition) {
        has_container_ops = true;
      }
    }
  }
  os << "\n"
     << "// Build inside the dipdc tree and link against minimpi + fuzz.\n"
     << "#include <cstdint>\n#include <span>\n#include <vector>\n\n"
     << (has_container_ops ? "#include \"container/container.hpp\"\n" : "")
     << "#include \"fuzz/content.hpp\"\n"
     << "#include \"fuzz/repro_util.hpp\"\n"
     << "#include \"minimpi/comm.hpp\"\n"
     << "#include \"minimpi/faults.hpp\"\n"
     << "#include \"minimpi/runtime.hpp\"\n\n"
     << "using namespace dipdc;\nusing dipdc::fuzz::run_collective;\n\n"
     << "int main() {\n"
     << "  constexpr std::uint64_t kSeed = " << p.seed << "ull;\n"
     << "  minimpi::RuntimeOptions opt;\n"
     << "  opt.record_trace = true;\n  opt.record_channels = true;\n";
  // The eager/rendezvous switchover and collective algorithm choices can be
  // load-bearing for a bug; replicate the generated options exactly.
  const auto algo = [](minimpi::CollectiveAlgorithm a) {
    switch (a) {
      case minimpi::CollectiveAlgorithm::kAuto: return "kAuto";
      case minimpi::CollectiveAlgorithm::kClassic: return "kClassic";
      case minimpi::CollectiveAlgorithm::kTree: return "kTree";
      case minimpi::CollectiveAlgorithm::kRecursiveDoubling:
        return "kRecursiveDoubling";
      case minimpi::CollectiveAlgorithm::kRing: return "kRing";
    }
    return "kAuto";
  };
  os << "  opt.eager_threshold = " << p.options.eager_threshold << ";\n"
     << "  opt.collectives.scatter = minimpi::CollectiveAlgorithm::"
     << algo(p.options.collectives.scatter) << ";\n"
     << "  opt.collectives.gather = minimpi::CollectiveAlgorithm::"
     << algo(p.options.collectives.gather) << ";\n"
     << "  opt.collectives.allreduce = minimpi::CollectiveAlgorithm::"
     << algo(p.options.collectives.allreduce) << ";\n"
     << "  opt.collectives.allgather = minimpi::CollectiveAlgorithm::"
     << algo(p.options.collectives.allgather) << ";\n";
  if (!p.fault_spec.empty()) {
    os << "  minimpi::parse_fault_spec(\"" << p.fault_spec
       << "\", opt.faults, opt.reliable);\n"
       << "  opt.faults.seed = " << p.fault_seed << "ull;\n";
  }
  os << "  minimpi::run(" << p.nranks << ", [&](minimpi::Comm& comm) {\n"
     << "    switch (comm.rank()) {\n";
  for (int r = 0; r < p.nranks; ++r) {
    os << "    case " << r << ": {\n";
    emit_rank_body(os, p, r);
    os << "      break;\n    }\n";
  }
  os << "    default: break;\n    }\n  }, opt);\n  return 0;\n}\n";
  return os.str();
}

}  // namespace dipdc::fuzz
