// mpifuzz program model: a random-but-valid multi-rank communication
// program, represented as per-rank op lists tagged with globally ordered
// event ids (a rank-indexed op DAG).
//
// An *event* is the atomic unit of generation and shrinking: one message
// (its send, its receive, and any deferred wait), one wildcard window, one
// collective invocation across all members, one split, or one local clock
// advance.  Events carry a global total order, and every rank's op list is
// (except for deliberately deferred waits) the restriction of that order to
// the ops the rank participates in.  Executing events in ascending order on
// a single thread is therefore a valid schedule of the whole program, which
// is the deadlock-freedom argument for generated programs and the schedule
// the sequential oracle interprets.
//
// Shrinking removes whole events (an op never survives its event) subject
// to the dependency closure over communicators: a kept event that operates
// on a split-created communicator pulls the (transitive) chain of split
// events that created it back into the kept set, so every shrink candidate
// is a valid program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minimpi/options.hpp"
#include "minimpi/types.hpp"

namespace dipdc::fuzz {

enum class OpKind : std::uint8_t {
  // Point-to-point.
  kSend,
  kIsend,
  kSendReliable,
  kRecv,
  kIrecv,
  kProbeRecv,  // probe(src, tag) + recv of exactly the probed message
  kRecvReliable,
  kWait,     // completes request slot `req`
  kWaitAll,  // completes slots [req, req + nreq)
  kSendrecv,
  // Collectives (all members of the comm carry the op).
  kBarrier,
  kBcast,
  kScatter,
  kScatterv,
  kGather,
  kGatherv,
  kAllgather,
  kAllgatherv,
  kReduce,
  kAllreduce,
  kScan,
  kAlltoall,
  kAlltoallv,
  // Structure / local.
  kSplit,
  kSimCompute,
  kSimAdvance,
  // Elastic container (src/container) driven as first-class ops.  Create is
  // the zero-communication from_local() constructor, set_weight is a local
  // weight update (carried by every member; the owner applies it), and
  // repartition is the weight-driven collective transition: one allgather
  // plus one allreduce, plus two alltoallv exchanges when the cuts change.
  kContainerCreate,
  kContainerSetWeight,
  kContainerRepartition,
  // Nonblocking collectives: the issue op allocates a request slot on
  // every member (the whole group falls back to a blocking collective when
  // any member is out of slots) and the shared event id ties the deferred
  // per-member kWait ops back to it, exactly like isend/irecv.  The result
  // observation is emitted at wait time.
  kIbcast,
  kIreduce,
  kIallreduce,
  kIallgatherv,
};

[[nodiscard]] const char* op_kind_name(OpKind k);

enum class ReduceKind : std::uint8_t { kSum, kMin, kMax, kXor };

/// One operation of one rank.  A flat record rather than a variant: only
/// the fields relevant to `kind` are meaningful, which keeps generation,
/// interpretation, and C++ emission straightforward.
struct Op {
  OpKind kind = OpKind::kBarrier;
  std::uint32_t event = 0;  // owning event id (shrink granularity)
  int comm = 0;             // communicator id (0 = world)

  // Point-to-point.  Peers are ranks *within* `comm`; recv ops may use
  // minimpi::kAnySource / kAnyTag.
  int peer = 0;             // dest for sends, source filter for recvs
  int tag = 0;              // send tag, or recv tag filter
  std::uint32_t bytes = 0;  // payload bytes (send) / expected bytes (recv)
  std::uint64_t msg = 0;    // content id: keys the payload byte stream
  int req = -1;             // request slot for isend/irecv/wait
  int nreq = 0;             // kWaitAll: number of consecutive slots
  // Expected receive metadata the oracle needs: the true source comm rank
  // and tag of the message this recv matches (recv ops only).
  int expect_source = 0;
  int expect_tag = 0;
  // kSendrecv second (receive) leg.
  int peer2 = 0;
  int tag2 = 0;
  std::uint32_t bytes2 = 0;
  std::uint64_t msg2 = 0;  // content id of the message this leg receives

  // Any-source window group (stored on each window recv op): candidate
  // sources (comm ranks) and their message content ids.  The executor's
  // k receives may match these in any order; the checker resolves the
  // multiset by source.
  std::vector<int> wsources;
  std::vector<std::uint64_t> wmsgs;

  // Collectives.
  std::uint32_t elems = 0;  // elements contributed per member (equal-size)
  int elem_size = 8;        // 1 or 8 (reductions always 8: std::uint64_t)
  int root = 0;             // comm rank
  ReduceKind rop = ReduceKind::kSum;
  std::vector<std::uint32_t> counts;   // v-variants: per-member counts
  std::vector<std::uint32_t> counts2;  // alltoallv: this rank's recv counts

  // kSplit.  Container ops reuse `color` as the container id, `elems` as
  // the global element count (create), `msg` as the global element index
  // and `amount` as the new weight (set_weight).
  int color = 0;
  int key = 0;
  int result_comm = 0;  // fuzzer-level id of the comm this rank ends up in

  // kSimCompute (flops = mem_bytes = amount) / kSimAdvance (seconds).
  double amount = 0.0;
};

/// Communicator metadata, replayed from split events at generation time.
struct CommInfo {
  int id = 0;
  int parent = -1;                 // -1 for the world comm
  std::uint32_t created_by = 0;    // split event id (0 == world, no creator)
  std::vector<int> members;        // comm rank -> world rank
};

struct Program {
  int nranks = 2;
  std::uint64_t seed = 1;        // generator seed; also keys all content
  std::uint64_t fault_seed = 1;  // forwarded to FaultOptions::seed
  std::string fault_spec;        // human-readable plan ("" = fault-free)
  minimpi::RuntimeOptions options;  // derived from seed by the generator

  std::vector<CommInfo> comms;        // comms[0] is always the world
  std::vector<std::vector<Op>> ops;   // per world rank, program order
  std::uint32_t num_events = 0;       // event ids are [0, num_events)
  /// Events surviving shrinking, ascending; empty means "all events" (the
  /// unshrunk program).  Replay = regenerate from seed, then filter.
  std::vector<std::uint32_t> kept_events;

  [[nodiscard]] std::size_t op_count() const;
  [[nodiscard]] bool has_any_source_window() const;
  /// True when some rank runs receive-side communication while an irecv is
  /// posted (or posts two at once).  The simulated ingress-link accounting
  /// for a posted irecv happens at sender-timed delivery, so such programs
  /// have schedule-dependent simulated clocks; the checker leaves their
  /// clocks out of the outcome digest, like any-source windows.
  [[nodiscard]] bool has_racy_irecv_window() const;
  /// True when the program issues any nonblocking collective.  Their
  /// internal receives are posted at issue and complete at sender-timed
  /// delivery (several can be outstanding at once), so simulated clocks
  /// are schedule-dependent — the checker's digest leaves timing out, the
  /// same carve-out as racy irecv windows.
  [[nodiscard]] bool has_icollective() const;
  [[nodiscard]] const CommInfo& comm_info(int id) const;
};

/// Keeps only `keep` (event ids): ops of removed events disappear from
/// every rank.  Applies the communicator dependency closure first — a kept
/// event using a split-created comm re-adds the (transitive) chain of
/// creating split events — and records the final set in kept_events.
[[nodiscard]] Program filter_events(const Program& full,
                                    const std::vector<std::uint32_t>& keep);

/// Drops trailing ranks that own no ops (shrinker helper).  Never trims a
/// rank the fault plan kills, and never below one rank.
[[nodiscard]] Program trim_trailing_ranks(const Program& p);

/// One line per op, grouped by rank — the failure-report listing.
[[nodiscard]] std::string describe(const Program& p);

/// Emits a standalone C++ repro (a main() that rebuilds the op sequence
/// against the public minimpi API, using fuzz/content.hpp for payloads).
[[nodiscard]] std::string to_cpp(const Program& p);

}  // namespace dipdc::fuzz
