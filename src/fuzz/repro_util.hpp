// Shared collective-execution helper for mpifuzz.
//
// Both the fuzz executor and the C++ repros emitted by to_cpp() drive
// collectives through run_collective(), so a shrunk repro exercises exactly
// the code path the fuzzer observed failing.  Movement collectives are
// executed as byte spans (counts are scaled by elem_size up front — slice
// boundaries and algorithm selection depend only on byte sizes, so the
// result is bit-identical to the typed call); reductions always operate on
// std::uint64_t with order-independent operators, so every algorithm
// (classic, recursive doubling, ring) must produce identical bits.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "fuzz/content.hpp"
#include "minimpi/comm.hpp"
#include "support/error.hpp"

namespace dipdc::fuzz {

/// Bitwise-xor reduction (not in minimpi::ops; fully associative and
/// commutative on unsigned, so bit-exact under any evaluation order).
struct BitXor {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a ^ b;
  }
};

/// Wrapping sum: unsigned overflow is defined and order-independent.
struct WrapSum {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return static_cast<T>(a + b);
  }
};

struct MinOf {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};

struct MaxOf {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

namespace repro_detail {

inline std::vector<std::size_t> to_byte_counts(
    const std::vector<std::uint32_t>& counts, int elem_size) {
  std::vector<std::size_t> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<std::size_t>(counts[i]) *
             static_cast<std::size_t>(elem_size);
  }
  return out;
}

inline std::vector<std::size_t> prefix_displs(
    const std::vector<std::size_t>& counts) {
  std::vector<std::size_t> displs(counts.size(), 0);
  for (std::size_t i = 1; i < counts.size(); ++i) {
    displs[i] = displs[i - 1] + counts[i - 1];
  }
  return displs;
}

inline std::vector<std::uint8_t> words_to_bytes(
    const std::vector<std::uint64_t>& w) {
  std::vector<std::uint8_t> out(w.size() * 8);
  if (!out.empty()) std::memcpy(out.data(), w.data(), out.size());
  return out;
}

template <typename Fn>
std::vector<std::uint8_t> run_reduction(minimpi::Comm& comm,
                                        std::uint64_t seed, int kind,
                                        std::uint64_t event,
                                        std::uint32_t elems, int root,
                                        Fn&& call) {
  (void)kind;
  const std::vector<std::uint64_t> mine =
      collective_words(seed, event, comm.rank(), elems);
  std::vector<std::uint64_t> out(elems);
  const bool has_result = call(mine, out, root);
  return has_result ? words_to_bytes(out) : std::vector<std::uint8_t>{};
}

}  // namespace repro_detail

/// Executes one collective described by the fuzz op fields (`kind` is the
/// integer value of fuzz::OpKind) and returns the bytes this rank's result
/// buffer holds afterwards — empty when the collective defines no result
/// for this rank (e.g. gather on a non-root).
///
/// Contribution content is the pure function fuzz::collective_bytes /
/// collective_words of (seed, event, member), so caller and oracle agree
/// on inputs without communication.
inline std::vector<std::uint8_t> run_collective(
    minimpi::Comm& comm, std::uint64_t seed, int kind, std::uint64_t event,
    std::uint32_t elems, int elem_size, int root, int rop,
    const std::vector<std::uint32_t>& counts,
    const std::vector<std::uint32_t>& counts2) {
  using repro_detail::prefix_displs;
  using repro_detail::to_byte_counts;
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t esz = static_cast<std::size_t>(elem_size);
  const std::size_t nb = static_cast<std::size_t>(elems) * esz;
  auto content = [&](int member, std::size_t n) {
    return collective_bytes(seed, event, member, n);
  };

  // kind values follow fuzz::OpKind; keep in sync with program.hpp.
  enum {
    kBarrier = 10, kBcast, kScatter, kScatterv, kGather, kGatherv,
    kAllgather, kAllgatherv, kReduce, kAllreduce, kScan, kAlltoall,
    kAlltoallv
  };

  switch (kind) {
    case kBarrier: {
      comm.barrier();
      return {};
    }
    case kBcast: {
      std::vector<std::uint8_t> buf =
          r == root ? content(root, nb) : std::vector<std::uint8_t>(nb);
      comm.bcast(std::span<std::uint8_t>(buf), root);
      return buf;
    }
    case kScatter: {
      // Every rank materialises root's send buffer (content is pure), so no
      // rank needs to special-case an empty span.
      std::vector<std::uint8_t> send =
          content(root, nb * static_cast<std::size_t>(p));
      std::vector<std::uint8_t> recv(nb);
      comm.scatter(std::span<const std::uint8_t>(send),
                   std::span<std::uint8_t>(recv), root);
      return recv;
    }
    case kScatterv: {
      const std::vector<std::size_t> bc = to_byte_counts(counts, elem_size);
      const std::vector<std::size_t> displs = prefix_displs(bc);
      const std::size_t total =
          std::accumulate(bc.begin(), bc.end(), std::size_t{0});
      std::vector<std::uint8_t> send = content(root, total);
      std::vector<std::uint8_t> recv(bc[static_cast<std::size_t>(r)]);
      comm.scatterv(std::span<const std::uint8_t>(send),
                    std::span<const std::size_t>(bc),
                    std::span<const std::size_t>(displs),
                    std::span<std::uint8_t>(recv), root);
      return recv;
    }
    case kGather: {
      std::vector<std::uint8_t> send = content(r, nb);
      std::vector<std::uint8_t> recv(nb * static_cast<std::size_t>(p));
      comm.gather(std::span<const std::uint8_t>(send),
                  std::span<std::uint8_t>(recv), root);
      return r == root ? recv : std::vector<std::uint8_t>{};
    }
    case kGatherv: {
      const std::vector<std::size_t> bc = to_byte_counts(counts, elem_size);
      const std::vector<std::size_t> displs = prefix_displs(bc);
      const std::size_t total =
          std::accumulate(bc.begin(), bc.end(), std::size_t{0});
      std::vector<std::uint8_t> send =
          content(r, bc[static_cast<std::size_t>(r)]);
      std::vector<std::uint8_t> recv(total);
      comm.gatherv(std::span<const std::uint8_t>(send),
                   std::span<const std::size_t>(bc),
                   std::span<const std::size_t>(displs),
                   std::span<std::uint8_t>(recv), root);
      return r == root ? recv : std::vector<std::uint8_t>{};
    }
    case kAllgather: {
      std::vector<std::uint8_t> send = content(r, nb);
      std::vector<std::uint8_t> recv(nb * static_cast<std::size_t>(p));
      comm.allgather(std::span<const std::uint8_t>(send),
                     std::span<std::uint8_t>(recv));
      return recv;
    }
    case kAllgatherv: {
      const std::vector<std::size_t> bc = to_byte_counts(counts, elem_size);
      const std::vector<std::size_t> displs = prefix_displs(bc);
      const std::size_t total =
          std::accumulate(bc.begin(), bc.end(), std::size_t{0});
      std::vector<std::uint8_t> send =
          content(r, bc[static_cast<std::size_t>(r)]);
      std::vector<std::uint8_t> recv(total);
      comm.allgatherv(std::span<const std::uint8_t>(send),
                      std::span<const std::size_t>(bc),
                      std::span<const std::size_t>(displs),
                      std::span<std::uint8_t>(recv));
      return recv;
    }
    case kAlltoall: {
      std::vector<std::uint8_t> send =
          content(r, nb * static_cast<std::size_t>(p));
      std::vector<std::uint8_t> recv(nb * static_cast<std::size_t>(p));
      comm.alltoall(std::span<const std::uint8_t>(send),
                    std::span<std::uint8_t>(recv));
      return recv;
    }
    case kAlltoallv: {
      const std::vector<std::size_t> sc = to_byte_counts(counts, elem_size);
      const std::vector<std::size_t> rc = to_byte_counts(counts2, elem_size);
      const std::vector<std::size_t> sd = prefix_displs(sc);
      const std::vector<std::size_t> rd = prefix_displs(rc);
      std::vector<std::uint8_t> send = content(
          r, std::accumulate(sc.begin(), sc.end(), std::size_t{0}));
      std::vector<std::uint8_t> recv(
          std::accumulate(rc.begin(), rc.end(), std::size_t{0}));
      comm.alltoallv(std::span<const std::uint8_t>(send),
                     std::span<const std::size_t>(sc),
                     std::span<const std::size_t>(sd),
                     std::span<std::uint8_t>(recv),
                     std::span<const std::size_t>(rc),
                     std::span<const std::size_t>(rd));
      return recv;
    }
    case kReduce:
    case kAllreduce:
    case kScan: {
      auto dispatch = [&](auto op) {
        return repro_detail::run_reduction(
            comm, seed, kind, event, elems, root,
            [&](const std::vector<std::uint64_t>& mine,
                std::vector<std::uint64_t>& out, int rt) {
              if (kind == kReduce) {
                comm.reduce(std::span<const std::uint64_t>(mine),
                            std::span<std::uint64_t>(out), op, rt);
                return r == rt;
              }
              if (kind == kAllreduce) {
                comm.allreduce(std::span<const std::uint64_t>(mine),
                               std::span<std::uint64_t>(out), op);
              } else {
                comm.scan(std::span<const std::uint64_t>(mine),
                          std::span<std::uint64_t>(out), op);
              }
              return true;
            });
      };
      switch (rop) {
        case 0: return dispatch(WrapSum{});
        case 1: return dispatch(MinOf{});
        case 2: return dispatch(MaxOf{});
        default: return dispatch(BitXor{});
      }
    }
    default:
      DIPDC_REQUIRE(false, "run_collective: not a collective op kind");
      return {};
  }
}

/// Buffers of one in-flight nonblocking collective.  The issue call wires
/// the request to spans of these vectors, so the struct must stay alive
/// until the request is waited; result() then reads the completed receive
/// buffer back as bytes (empty when this rank gets no result, e.g. an
/// ireduce non-root).
struct IcollBuffers {
  std::vector<std::uint8_t> send8, recv8;    // ibcast / iallgatherv payloads
  std::vector<std::uint64_t> send64, recv64; // reduction words
  std::vector<std::size_t> counts, displs;   // iallgatherv geometry

  [[nodiscard]] std::vector<std::uint8_t> result() const {
    if (!recv64.empty()) return repro_detail::words_to_bytes(recv64);
    return recv8;
  }
};

/// Issues one nonblocking collective described by the fuzz op fields
/// (`kind` is the integer value of fuzz::OpKind) and returns its Request.
/// Contribution content follows the same pure functions as run_collective,
/// so the oracle can predict every rank's completed buffer.
inline minimpi::Request issue_icollective(
    minimpi::Comm& comm, std::uint64_t seed, int kind, std::uint64_t event,
    std::uint32_t elems, int elem_size, int root, int rop,
    const std::vector<std::uint32_t>& counts, IcollBuffers& bufs) {
  using repro_detail::prefix_displs;
  using repro_detail::to_byte_counts;
  const int r = comm.rank();
  const std::size_t nb = static_cast<std::size_t>(elems) *
                         static_cast<std::size_t>(elem_size);

  // kind values follow fuzz::OpKind; keep in sync with program.hpp.
  enum { kIbcast = 29, kIreduce, kIallreduce, kIallgatherv };

  switch (kind) {
    case kIbcast: {
      bufs.recv8 = r == root ? collective_bytes(seed, event, root, nb)
                             : std::vector<std::uint8_t>(nb);
      return comm.ibcast(std::span<std::uint8_t>(bufs.recv8), root);
    }
    case kIreduce:
    case kIallreduce: {
      bufs.send64 = collective_words(seed, event, r, elems);
      // ireduce non-roots keep recv64 empty so result() reports nothing.
      if (kind == kIallreduce || r == root) bufs.recv64.resize(elems);
      auto dispatch = [&](auto op) {
        if (kind == kIreduce) {
          return comm.ireduce(std::span<const std::uint64_t>(bufs.send64),
                              std::span<std::uint64_t>(bufs.recv64), op,
                              root);
        }
        return comm.iallreduce(std::span<const std::uint64_t>(bufs.send64),
                               std::span<std::uint64_t>(bufs.recv64), op);
      };
      switch (rop) {
        case 0: return dispatch(WrapSum{});
        case 1: return dispatch(MinOf{});
        case 2: return dispatch(MaxOf{});
        default: return dispatch(BitXor{});
      }
    }
    case kIallgatherv: {
      bufs.counts = to_byte_counts(counts, elem_size);
      bufs.displs = prefix_displs(bufs.counts);
      const std::size_t total = std::accumulate(
          bufs.counts.begin(), bufs.counts.end(), std::size_t{0});
      bufs.send8 = collective_bytes(seed, event, r,
                                    bufs.counts[static_cast<std::size_t>(r)]);
      bufs.recv8.assign(total, 0);
      return comm.iallgatherv(std::span<const std::uint8_t>(bufs.send8),
                              std::span<const std::size_t>(bufs.counts),
                              std::span<const std::size_t>(bufs.displs),
                              std::span<std::uint8_t>(bufs.recv8));
    }
    default:
      DIPDC_REQUIRE(false, "issue_icollective: not an icollective op kind");
      return {};
  }
}

}  // namespace dipdc::fuzz
