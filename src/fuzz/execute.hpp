// mpifuzz executor: runs a Program on the real threaded minimpi runtime and
// records what each rank actually observed (receive payloads and statuses,
// collective result buffers) alongside the RunResult.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/program.hpp"
#include "minimpi/runtime.hpp"

namespace dipdc::fuzz {

/// What one observing op actually saw; mirrors oracle.hpp's ExpectObs and
/// is recorded in the same per-rank order the oracle emits expectations.
struct Observation {
  std::uint32_t event = 0;
  OpKind kind = OpKind::kRecv;
  int source = -2;
  int tag = -2;
  std::vector<std::uint8_t> bytes;
};

struct ExecutionOutcome {
  /// run() returned normally.  When false, `error` holds the exception text
  /// (deadlocks, fault-injection kills, runtime REQUIRE failures, ...) and
  /// result/obs are partial.
  bool ran = false;
  std::string error;
  minimpi::RunResult result;
  std::vector<std::vector<Observation>> obs;  // per world rank
};

/// Executes the program on the threaded runtime.  Never throws for runtime
/// failures — they are captured in the outcome for the checker to judge.
[[nodiscard]] ExecutionOutcome execute(const Program& p);

}  // namespace dipdc::fuzz
