#include "fuzz/oracle.hpp"

#include <map>
#include <numeric>
#include <unordered_map>

#include "container/partitioning.hpp"
#include "fuzz/content.hpp"
#include "support/error.hpp"

namespace dipdc::fuzz {

namespace {

using minimpi::Primitive;

std::vector<std::size_t> byte_counts(const std::vector<std::uint32_t>& counts,
                                     int elem_size) {
  std::vector<std::size_t> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<std::size_t>(counts[i]) *
             static_cast<std::size_t>(elem_size);
  }
  return out;
}

std::vector<std::size_t> prefix_displs(const std::vector<std::size_t>& c) {
  std::vector<std::size_t> d(c.size(), 0);
  for (std::size_t i = 1; i < c.size(); ++i) d[i] = d[i - 1] + c[i - 1];
  return d;
}

std::uint64_t combine(ReduceKind k, std::uint64_t a, std::uint64_t b) {
  switch (k) {
    case ReduceKind::kSum: return a + b;
    case ReduceKind::kMin: return b < a ? b : a;
    case ReduceKind::kMax: return a < b ? b : a;
    case ReduceKind::kXor: return a ^ b;
  }
  return 0;
}

std::vector<std::uint8_t> words_to_bytes(const std::vector<std::uint64_t>& w) {
  std::vector<std::uint8_t> out(w.size() * 8);
  if (!out.empty()) std::memcpy(out.data(), w.data(), out.size());
  return out;
}

class Oracle {
 public:
  explicit Oracle(const Program& p) : p_(p) {}

  Expectation run() {
    const auto n = static_cast<std::size_t>(p_.nranks);
    e_.calls.assign(n, {});
    e_.trace_events.assign(n, 0);
    e_.p2p.assign(n, {});
    e_.obs.assign(n, {});
    const minimpi::FaultOptions& f = p_.options.faults;
    e_.exact_p2p = !(f.drop_prob > 0 || f.dup_prob > 0);

    simulate_containers();
    for (int r = 0; r < p_.nranks; ++r) interpret_rank(r);

    if (f.kill_rank >= 0 && f.kill_rank < p_.nranks) {
      const auto& kc = e_.calls[static_cast<std::size_t>(f.kill_rank)];
      const std::uint64_t total =
          std::accumulate(kc.begin(), kc.end(), std::uint64_t{0});
      if (static_cast<std::uint64_t>(f.kill_at_call) <= total) {
        e_.expect_kill = true;
        e_.killed_rank = f.kill_rank;
      }
    }
    return std::move(e_);
  }

 private:
  void count(int rank, Primitive prim, std::uint64_t k = 1) {
    e_.calls[static_cast<std::size_t>(rank)]
            [static_cast<std::size_t>(prim)] += k;
    e_.trace_events[static_cast<std::size_t>(rank)] += k;
  }

  /// User-p2p accounting for one delivered message (reliable frames carry
  /// an 8-byte header).  `src`/`dst` are world ranks.
  void account_message(int src, int dst, std::uint32_t payload,
                       bool reliable) {
    const std::uint64_t wire = payload + (reliable ? 8u : 0u);
    auto& sp = e_.p2p[static_cast<std::size_t>(src)];
    auto& rp = e_.p2p[static_cast<std::size_t>(dst)];
    sp[0] += wire;
    sp[1] += 1;
    rp[2] += wire;
    rp[3] += 1;
    ChannelExpect& ch = e_.channels[{src, dst}];
    ch.bytes += wire;
    ch.messages += 1;
  }

  [[nodiscard]] int to_world(int comm_id, int comm_rank) const {
    return p_.comm_info(comm_id).members[static_cast<std::size_t>(comm_rank)];
  }

  /// The op a given comm member executes for `event` (collective lookups).
  [[nodiscard]] const Op& member_op(int comm_id, int member,
                                    std::uint32_t event) const {
    const int world = to_world(comm_id, member);
    for (const Op& op : p_.ops[static_cast<std::size_t>(world)]) {
      if (op.event == event && op.comm == comm_id) return op;
    }
    DIPDC_REQUIRE(false, "collective op missing on a member rank");
    return p_.ops[0][0];  // unreachable
  }

  [[nodiscard]] std::vector<std::uint8_t> reduction_result(const Op& op,
                                                           int member,
                                                           int p) const {
    const int upto = op.kind == OpKind::kScan ? member : p - 1;
    std::vector<std::uint64_t> acc =
        collective_words(p_.seed, op.event, 0, op.elems);
    for (int m = 1; m <= upto; ++m) {
      const std::vector<std::uint64_t> w =
          collective_words(p_.seed, op.event, m, op.elems);
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = combine(op.rop, acc[i], w[i]);
      }
    }
    return words_to_bytes(acc);
  }

  [[nodiscard]] std::vector<std::uint8_t> collective_result(const Op& op,
                                                            int member) const {
    const CommInfo& c = p_.comm_info(op.comm);
    const int p = static_cast<int>(c.members.size());
    const std::size_t nb = static_cast<std::size_t>(op.elems) *
                           static_cast<std::size_t>(op.elem_size);
    auto content = [&](int m, std::size_t bytes) {
      return collective_bytes(p_.seed, op.event, m, bytes);
    };
    auto slice = [](const std::vector<std::uint8_t>& v, std::size_t off,
                    std::size_t len) {
      return std::vector<std::uint8_t>(v.begin() + static_cast<std::ptrdiff_t>(off),
                                       v.begin() + static_cast<std::ptrdiff_t>(off + len));
    };
    switch (op.kind) {
      case OpKind::kBarrier:
        return {};
      case OpKind::kBcast:
      case OpKind::kIbcast:
        return content(op.root, nb);
      case OpKind::kScatter:
        return slice(content(op.root, nb * static_cast<std::size_t>(p)),
                     static_cast<std::size_t>(member) * nb, nb);
      case OpKind::kScatterv: {
        const auto bc = byte_counts(op.counts, op.elem_size);
        const auto d = prefix_displs(bc);
        const std::size_t total =
            std::accumulate(bc.begin(), bc.end(), std::size_t{0});
        return slice(content(op.root, total),
                     d[static_cast<std::size_t>(member)],
                     bc[static_cast<std::size_t>(member)]);
      }
      case OpKind::kGather:
      case OpKind::kAllgather: {
        if (op.kind == OpKind::kGather && member != op.root) return {};
        std::vector<std::uint8_t> out;
        for (int m = 0; m < p; ++m) {
          const auto piece = content(m, nb);
          out.insert(out.end(), piece.begin(), piece.end());
        }
        return out;
      }
      case OpKind::kGatherv:
      case OpKind::kAllgatherv:
      case OpKind::kIallgatherv: {
        if (op.kind == OpKind::kGatherv && member != op.root) return {};
        const auto bc = byte_counts(op.counts, op.elem_size);
        std::vector<std::uint8_t> out;
        for (int m = 0; m < p; ++m) {
          const auto piece = content(m, bc[static_cast<std::size_t>(m)]);
          out.insert(out.end(), piece.begin(), piece.end());
        }
        return out;
      }
      case OpKind::kReduce:
      case OpKind::kIreduce:
        if (member != op.root) return {};
        return reduction_result(op, member, p);
      case OpKind::kAllreduce:
      case OpKind::kScan:
      case OpKind::kIallreduce:
        return reduction_result(op, member, p);
      case OpKind::kAlltoall: {
        std::vector<std::uint8_t> out;
        for (int m = 0; m < p; ++m) {
          const auto all = content(m, nb * static_cast<std::size_t>(p));
          const auto piece =
              slice(all, static_cast<std::size_t>(member) * nb, nb);
          out.insert(out.end(), piece.begin(), piece.end());
        }
        return out;
      }
      case OpKind::kAlltoallv: {
        std::vector<std::uint8_t> out;
        for (int m = 0; m < p; ++m) {
          const Op& src = member_op(op.comm, m, op.event);
          const auto bc = byte_counts(src.counts, src.elem_size);
          const auto d = prefix_displs(bc);
          const std::size_t total =
              std::accumulate(bc.begin(), bc.end(), std::size_t{0});
          const auto piece =
              slice(content(m, total), d[static_cast<std::size_t>(member)],
                    bc[static_cast<std::size_t>(member)]);
          out.insert(out.end(), piece.begin(), piece.end());
        }
        return out;
      }
      default:
        DIPDC_REQUIRE(false, "not a collective op");
        return {};
    }
  }

  /// Replays the container ops in global event order against the real
  /// Partitioning arithmetic, recording each repartition's post-exchange
  /// cuts and whether data moved.  Container ops are identical on every
  /// member rank, so events dedupe by id; events are globally ordered, so
  /// walking them ascending is a valid schedule of the weight evolution
  /// (the same argument the rest of the oracle rests on).  Weights travel
  /// with their elements during an exchange, so one global weight vector
  /// indexed by global element id models every rank at once.
  void simulate_containers() {
    std::map<std::uint32_t, const Op*> by_event;
    for (const auto& rank_ops : p_.ops) {
      for (const Op& op : rank_ops) {
        if (op.kind == OpKind::kContainerCreate ||
            op.kind == OpKind::kContainerSetWeight ||
            op.kind == OpKind::kContainerRepartition) {
          by_event.emplace(op.event, &op);
        }
      }
    }
    struct Sim {
      container::Partitioning part;
      std::vector<double> weights;  // global, one per element
    };
    std::map<int, Sim> sims;
    for (const auto& [event, op] : by_event) {
      switch (op->kind) {
        case OpKind::kContainerCreate: {
          const auto parts =
              static_cast<int>(p_.comm_info(op->comm).members.size());
          Sim s;
          s.part = container::Partitioning::block(op->elems, parts);
          s.weights.assign(op->elems, 1.0);
          sims[op->color] = std::move(s);
          break;
        }
        case OpKind::kContainerSetWeight:
          sims.at(op->color).weights[static_cast<std::size_t>(op->msg)] =
              op->amount;
          break;
        case OpKind::kContainerRepartition: {
          Sim& s = sims.at(op->color);
          // Quantization is elementwise, so quantizing the global vector
          // equals the concatenation of the per-rank quantizations the real
          // repartition allgathers.
          container::Partitioning next = container::Partitioning::from_weights(
              container::quantize_weights(s.weights),
              static_cast<int>(p_.comm_info(op->comm).members.size()));
          reparts_[event] = {next.cuts(), next != s.part};
          s.part = std::move(next);
          break;
        }
        default:
          break;
      }
    }
  }

  void interpret_rank(int rank) {
    const auto r = static_cast<std::size_t>(rank);
    auto& obs = e_.obs[r];
    // Slot map for deferred waits: slot -> expected observation (empty for
    // isend slots, which observe nothing at wait time).
    std::unordered_map<int, std::pair<bool, ExpectObs>> slots;

    for (const Op& op : p_.ops[r]) {
      const CommInfo& c = p_.comm_info(op.comm);
      switch (op.kind) {
        case OpKind::kSend:
        case OpKind::kIsend:
        case OpKind::kSendReliable: {
          count(rank, op.kind == OpKind::kSend       ? Primitive::kSend
                      : op.kind == OpKind::kIsend    ? Primitive::kIsend
                                                     : Primitive::kSendReliable);
          account_message(rank, to_world(op.comm, op.peer), op.bytes,
                          op.kind == OpKind::kSendReliable);
          if (op.kind == OpKind::kIsend) {
            slots[op.req] = {false, ExpectObs{}};
          }
          break;
        }
        case OpKind::kRecv:
        case OpKind::kProbeRecv:
        case OpKind::kRecvReliable:
        case OpKind::kIrecv: {
          if (op.kind == OpKind::kProbeRecv) {
            count(rank, Primitive::kProbe);
            count(rank, Primitive::kRecv);
          } else {
            count(rank, op.kind == OpKind::kRecv      ? Primitive::kRecv
                        : op.kind == OpKind::kIrecv   ? Primitive::kIrecv
                                                      : Primitive::kRecvReliable);
          }
          ExpectObs ex;
          ex.event = op.event;
          ex.kind = op.kind;
          if (op.peer == minimpi::kAnySource) {
            ex.window = true;
            ex.wsources = op.wsources;
            for (const std::uint64_t m : op.wmsgs) {
              ex.wbytes.push_back(message_bytes(p_.seed, m, op.bytes));
            }
          } else {
            ex.source = op.expect_source;
            ex.tag = op.expect_tag;
            ex.bytes = message_bytes(p_.seed, op.msg, op.bytes);
          }
          if (op.kind == OpKind::kIrecv) {
            slots[op.req] = {true, std::move(ex)};
          } else {
            obs.push_back(std::move(ex));
          }
          break;
        }
        case OpKind::kWait: {
          count(rank, Primitive::kWait);
          auto it = slots.find(op.req);
          DIPDC_REQUIRE(it != slots.end(), "wait on unknown request slot");
          if (it->second.first) obs.push_back(std::move(it->second.second));
          slots.erase(it);
          break;
        }
        case OpKind::kWaitAll: {
          for (int s = op.req; s < op.req + op.nreq; ++s) {
            count(rank, Primitive::kWait);
            auto it = slots.find(s);
            if (it == slots.end()) continue;
            if (it->second.first) obs.push_back(std::move(it->second.second));
            slots.erase(it);
          }
          break;
        }
        case OpKind::kSendrecv: {
          count(rank, Primitive::kSendrecv);
          account_message(rank, to_world(op.comm, op.peer), op.bytes, false);
          ExpectObs ex;
          ex.event = op.event;
          ex.kind = op.kind;
          ex.source = op.expect_source;
          ex.tag = op.expect_tag;
          ex.bytes = message_bytes(p_.seed, op.msg2, op.bytes2);
          obs.push_back(std::move(ex));
          break;
        }
        case OpKind::kSplit:
        case OpKind::kSimCompute:
        case OpKind::kSimAdvance:
        case OpKind::kContainerCreate:     // from_local makes no calls
        case OpKind::kContainerSetWeight:  // local weight update
          break;  // no count_call, no trace, no observation
        case OpKind::kContainerRepartition: {
          // One allgatherv of the weights (counts as kAllgather) plus the
          // cut-agreement allreduce; the two alltoallv exchanges (data,
          // then weights) happen only when ownership changed.
          count(rank, Primitive::kAllgather);
          count(rank, Primitive::kAllreduce);
          const RepartExpect& re = reparts_.at(op.event);
          if (re.moved) count(rank, Primitive::kAlltoallv, 2);
          int member = -1;
          for (std::size_t i = 0; i < c.members.size(); ++i) {
            if (c.members[i] == rank) member = static_cast<int>(i);
          }
          DIPDC_REQUIRE(member >= 0, "rank not a member of container comm");
          const std::size_t b = re.cuts[static_cast<std::size_t>(member)];
          const std::size_t e = re.cuts[static_cast<std::size_t>(member) + 1];
          std::vector<std::uint64_t> slab(e - b);
          for (std::size_t g = b; g < e; ++g) {
            slab[g - b] = container_word(p_.seed, op.color, g);
          }
          ExpectObs ex;
          ex.event = op.event;
          ex.kind = op.kind;
          ex.source = -2;
          ex.tag = -2;
          ex.bytes = container_obs(re.cuts, slab);
          obs.push_back(std::move(ex));
          break;
        }
        case OpKind::kIbcast:
        case OpKind::kIreduce:
        case OpKind::kIallreduce:
        case OpKind::kIallgatherv: {
          // Issue counts the icollective primitive now; the deferred
          // kWait op counts Primitive::kWait and flushes the expected
          // result observation, like a deferred irecv.
          count(rank, op.kind == OpKind::kIbcast    ? Primitive::kIbcast
                      : op.kind == OpKind::kIreduce ? Primitive::kIreduce
                      : op.kind == OpKind::kIallreduce
                          ? Primitive::kIallreduce
                          : Primitive::kIallgatherv);
          int member = -1;
          for (std::size_t i = 0; i < c.members.size(); ++i) {
            if (c.members[i] == rank) member = static_cast<int>(i);
          }
          DIPDC_REQUIRE(member >= 0, "rank not a member of collective comm");
          ExpectObs ex;
          ex.event = op.event;
          ex.kind = op.kind;
          ex.source = -2;
          ex.tag = -2;
          ex.bytes = collective_result(op, member);
          slots[op.req] = {true, std::move(ex)};
          break;
        }
        default: {
          // Collectives.  kAllgatherv counts as Primitive::kAllgather.
          static constexpr std::pair<OpKind, Primitive> kMap[] = {
              {OpKind::kBarrier, Primitive::kBarrier},
              {OpKind::kBcast, Primitive::kBcast},
              {OpKind::kScatter, Primitive::kScatter},
              {OpKind::kScatterv, Primitive::kScatterv},
              {OpKind::kGather, Primitive::kGather},
              {OpKind::kGatherv, Primitive::kGatherv},
              {OpKind::kAllgather, Primitive::kAllgather},
              {OpKind::kAllgatherv, Primitive::kAllgather},
              {OpKind::kReduce, Primitive::kReduce},
              {OpKind::kAllreduce, Primitive::kAllreduce},
              {OpKind::kScan, Primitive::kScan},
              {OpKind::kAlltoall, Primitive::kAlltoall},
              {OpKind::kAlltoallv, Primitive::kAlltoallv},
          };
          bool mapped = false;
          for (const auto& [k, prim] : kMap) {
            if (k == op.kind) {
              count(rank, prim);
              mapped = true;
              break;
            }
          }
          DIPDC_REQUIRE(mapped, "unhandled op kind in oracle");
          int member = -1;
          for (std::size_t i = 0; i < c.members.size(); ++i) {
            if (c.members[i] == rank) member = static_cast<int>(i);
          }
          DIPDC_REQUIRE(member >= 0, "rank not a member of collective comm");
          ExpectObs ex;
          ex.event = op.event;
          ex.kind = op.kind;
          ex.source = -2;
          ex.tag = -2;
          ex.bytes = collective_result(op, member);
          obs.push_back(std::move(ex));
          break;
        }
      }
    }
    DIPDC_REQUIRE(slots.empty(), "generated program leaked request slots");
  }

  struct RepartExpect {
    std::vector<std::size_t> cuts;
    bool moved = false;
  };

  const Program& p_;
  Expectation e_;
  std::map<std::uint32_t, RepartExpect> reparts_;  // by event id
};

}  // namespace

Expectation oracle(const Program& p) { return Oracle(p).run(); }

}  // namespace dipdc::fuzz
