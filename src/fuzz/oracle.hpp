// mpifuzz sequential oracle: a single-threaded interpreter that derives the
// expected outcome of a Program without running the threaded runtime.
//
// Because generated programs guarantee 1:1 message matching (unique tag
// ranges per event, FIFO-deterministic wildcard-tag windows, source-resolved
// any-source windows), the oracle needs no channel simulation: it walks each
// rank's op list once and derives, per rank,
//  * exact primitive call counts (CommStats::calls) and therefore the exact
//    number of trace events,
//  * exact user-p2p byte/message totals and per-channel traffic (only
//    asserted when the fault plan cannot drop or duplicate),
//  * the expected payload of every receive and the expected result buffer
//    of every collective, in the order the executor observes them,
//  * whether an armed kill plan actually fires (its call index is within
//    the victim's total call count), in which case the run must abort with
//    RankFailedError instead of producing results.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "fuzz/program.hpp"
#include "minimpi/types.hpp"

namespace dipdc::fuzz {

/// Expected observation for one observing op, in executor order.
struct ExpectObs {
  std::uint32_t event = 0;
  OpKind kind = OpKind::kRecv;
  /// Any-source window member: matched by source against `wsources` /
  /// `wbytes` instead of the exact fields below.
  bool window = false;
  int source = -2;
  int tag = -2;
  std::vector<std::uint8_t> bytes;
  std::vector<int> wsources;
  std::vector<std::vector<std::uint8_t>> wbytes;  // parallel to wsources
};

struct ChannelExpect {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

struct Expectation {
  /// True when the armed kill plan provably fires: the run must throw
  /// RankFailedError and no other invariant is checked.
  bool expect_kill = false;
  int killed_rank = -1;

  /// No drops or duplicates armed: p2p totals and channel traffic are exact.
  bool exact_p2p = true;

  std::vector<std::array<std::uint64_t, minimpi::kPrimitiveCount>> calls;
  std::vector<std::uint64_t> trace_events;  // per rank, == sum of calls
  /// Per rank: {bytes_sent, messages_sent, bytes_received,
  /// messages_received} at user p2p level (reliable frames count header
  /// bytes), valid when exact_p2p.
  std::vector<std::array<std::uint64_t, 4>> p2p;
  /// Per (src, dst) world pair, valid when exact_p2p; sent == received.
  std::map<std::pair<int, int>, ChannelExpect> channels;
  /// Per rank, in the order the executor records observations.
  std::vector<std::vector<ExpectObs>> obs;
};

/// Interprets the program sequentially and returns its expected outcome.
[[nodiscard]] Expectation oracle(const Program& p);

}  // namespace dipdc::fuzz
