// Metrics registry: named counters, gauges and log2-bucketed histograms
// behind one report.  minimpi registers its CommStats, fault-injection and
// per-phase timers here (see minimpi/stats.hpp build_metrics), so every
// subsystem's numbers come out of a single `report()` / `to_csv()` instead
// of scattered ad-hoc printers.
//
// Entries keep insertion order (reports are meant to be read top-to-bottom
// and diffed), and re-registering a name updates the existing entry.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dipdc::obs {

/// Power-of-two bucketed distribution.  Bucket 0 holds values < 1 (and
/// everything non-positive); bucket i >= 1 holds [2^(i-1), 2^i).
struct Histogram {
  static constexpr std::size_t kBuckets = 64;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};

  void observe(double value);
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Value at quantile q in [0, 1] estimated from the log2 buckets:
  /// the target rank is located in its bucket and interpolated linearly
  /// between the bucket's bounds [2^(i-1), 2^i) — module 4's serving
  /// report reads its p50/p99 latencies out of this.  The first and
  /// last populated buckets are clamped to the observed min/max so the
  /// estimate never leaves the data's range; the top rank (q = 1, or any
  /// q reaching the last observation) returns the observed max exactly.
  /// Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
};

class Registry {
 public:
  /// Sets (creating if needed) an integer counter.
  void set_counter(std::string_view name, std::uint64_t value);
  /// Adds to an integer counter, creating it at zero first.
  void add_counter(std::string_view name, std::uint64_t delta);
  /// Sets (creating if needed) a floating-point gauge; `unit` is a display
  /// suffix ("s", "B/s", ...).
  void set_gauge(std::string_view name, double value,
                 std::string_view unit = "");
  /// Records one observation into a histogram, creating it if needed.
  void observe(std::string_view name, double value);

  /// Counter value; 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Gauge value; 0.0 when absent.
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Histogram by name; nullptr when absent.
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Aligned human-readable report, one entry per line, insertion order.
  [[nodiscard]] std::string report() const;

  /// CSV dump: `name,type,value,count,sum,min,max` (value is the counter or
  /// gauge; histogram rows fill the statistical columns instead).
  [[nodiscard]] std::string to_csv() const;

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Type type = Type::kCounter;
    std::uint64_t value_u64 = 0;
    double value_f64 = 0.0;
    std::string unit;
    Histogram hist;
  };

  Entry& entry(std::string_view name, Type type);
  [[nodiscard]] const Entry* find(std::string_view name, Type type) const;

  std::vector<Entry> entries_;
};

}  // namespace dipdc::obs
