// Lock-cheap per-rank event recorder.
//
// One Lane per rank; each rank's thread appends only to its own lane, so
// recording takes no lock at all — the runtime joins all rank threads
// before merge() reads the lanes.  Message sequence ids are allocated from
// per-lane counters ((rank + 1) << 40 | ordinal), so they are unique across
// the world and deterministic for a deterministic program.
//
// Wall-clock capture is opt-in: with it off (the default), wall_now()
// returns 0.0 and every recorded event carries zeroed wall stamps, which
// keeps exported traces bit-identical across runs of a deterministic
// program.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/event.hpp"

namespace dipdc::obs {

class Recorder {
 public:
  /// One rank's append-only event buffer.  Event names must reference
  /// storage that outlives every copy of the recorded events (in practice:
  /// string literals or other static strings) — the recorder does not copy
  /// them.
  struct Lane {
    std::vector<Event> events;
    std::uint64_t next_seq = 0;
  };

  Recorder(int nranks, bool wall_clock);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] int nranks() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] bool wall_enabled() const { return wall_; }

  /// The lane owned by `rank`'s thread.  Only that thread may touch it
  /// while the world is running.
  Lane& lane(int rank) { return lanes_[static_cast<std::size_t>(rank)]; }

  /// Wall-clock seconds since this recorder was built; 0.0 when wall
  /// capture is disabled.
  [[nodiscard]] double wall_now() const {
    if (!wall_) return 0.0;
    const auto dt = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double>(dt).count();
  }

  /// Allocates a fresh world-unique message sequence id on `rank`'s lane.
  std::uint64_t alloc_seq(int rank) {
    return make_seq(rank, ++lane(rank).next_seq);
  }

  /// The sequence id of ordinal `n` (1-based) on `rank`'s lane.
  static std::uint64_t make_seq(int rank, std::uint64_t n) {
    return (static_cast<std::uint64_t>(rank + 1) << 40) | n;
  }

  /// Concatenates all lanes rank-major into one Trace.  Call only after
  /// every rank thread has stopped recording.
  [[nodiscard]] Trace merge() const;

 private:
  std::vector<Lane> lanes_;
  bool wall_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace dipdc::obs
