// Chrome/Perfetto `trace_event` JSON export and import.
//
// to_perfetto_json() writes the JSON-object form of the trace-event format:
// one lane (tid) per rank under a single process, "X" complete events for
// spans with sim-time timestamps in microseconds, and "s"/"f" flow-event
// pairs drawing an arrow from each send span to its matching receive span
// (paired by message sequence id).  Load the file at https://ui.perfetto.dev
// or chrome://tracing.
//
// The output is deterministic: timestamps are fixed-point formatted, map
// iteration is never used, and wall-clock annotations appear only when the
// recorder captured them — so a deterministic simulated run exports a
// bit-identical file every time (the golden-file tests rely on this).
//
// parse_perfetto_json() reads back exactly what to_perfetto_json() writes
// (it understands general JSON but maps only our schema), returning a
// Trace suitable for analysis — this is what `dipdc-trace` loads.
#pragma once

#include <string>
#include <string_view>

#include "obs/event.hpp"

namespace dipdc::obs {

[[nodiscard]] std::string to_perfetto_json(const Trace& trace);

/// Parses a trace produced by to_perfetto_json().  Throws std::runtime_error
/// on malformed JSON or a missing traceEvents array.
[[nodiscard]] Trace parse_perfetto_json(std::string_view json);

}  // namespace dipdc::obs
