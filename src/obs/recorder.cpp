#include "obs/recorder.hpp"

namespace dipdc::obs {

Recorder::Recorder(int nranks, bool wall_clock)
    : lanes_(static_cast<std::size_t>(nranks < 0 ? 0 : nranks)),
      wall_(wall_clock),
      epoch_(std::chrono::steady_clock::now()) {}

Trace Recorder::merge() const {
  Trace trace;
  trace.nranks = nranks();
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.events.size();
  trace.events.reserve(total);
  for (const Lane& lane : lanes_) {
    trace.events.insert(trace.events.end(), lane.events.begin(),
                        lane.events.end());
  }
  return trace;
}

}  // namespace dipdc::obs
