// ASCII rendering of a trace: a per-rank Gantt timeline and a one-line-
// per-event log.  This is the generic layer; minimpi::render_timeline /
// render_log wrap it with the runtime's primitive glyph table so existing
// output stays byte-identical.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>

#include "obs/event.hpp"

namespace dipdc::obs {

/// Maps an event to its timeline glyph; return '\0' to skip the event
/// (e.g. phase envelopes, or compute/idle spans that render as '.').
using GlyphFn = std::function<char(const Event&)>;

/// Renders events as a per-rank timeline of `width` columns covering
/// [0, t_max] simulated seconds.  `legend` is appended to the time axis
/// header.  Degenerate inputs (no events, zero horizon, out-of-range
/// ranks) render safely.
std::string render_timeline(std::span<const Event> events, int nranks,
                            double t_max, int width, const GlyphFn& glyph,
                            std::string_view legend);

/// One-line-per-event textual log (sorted by simulated start time),
/// truncated to `max_events` lines plus a "(N more)" marker.
std::string render_log(std::span<const Event> events,
                       std::size_t max_events = 50);

}  // namespace dipdc::obs
