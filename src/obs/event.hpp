// Structured observability: the event model shared by the recorder, the
// exporters (Perfetto JSON, ASCII timeline) and the trace analyses.
//
// An Event is one span (or instant) on one rank's lane.  Events carry both
// simulated timestamps (the deterministic LogGP clock minimpi advances) and
// optional wall-clock timestamps (real seconds since the run started; 0.0
// when wall capture is off, which is the default so that exported traces
// are bit-identical across runs).  Message send/recv pairs are linked by
// sequence ids (`seq_out` on the sender event, `seq_in` on the receiver
// event) — the edges of the happens-before graph that critical-path
// analysis walks and that Perfetto renders as flow arrows.
//
// The layer is domain-agnostic: `op` is an opaque code the producing
// runtime defines (minimpi stores its Primitive there; -1 means "no op",
// used by compute/idle/phase spans), and `name` is a string_view that must
// point at storage outliving the trace (static strings, or the owning
// Trace's intern pool).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace dipdc::obs {

/// Span (has duration) or instant (a point marker).
enum class Kind : std::uint8_t { kSpan, kInstant };

/// Coarse event class, used for glyphs, Perfetto categories and the
/// compute/comm/idle attribution in critical-path analysis.
enum class Category : std::uint8_t {
  kP2P,         // user point-to-point (send/recv families)
  kCollective,  // barrier, bcast, reductions, ...
  kWait,        // completion of a non-blocking operation
  kProbe,       // message probing
  kCompute,     // simulated kernel work (Comm::sim_compute)
  kIdle,        // explicit idling (Comm::sim_advance)
  kPhase,       // user-named module phase (envelopes other events)
  kOther,
};

inline constexpr std::size_t kCategoryCount = 8;

/// Stable lowercase name ("p2p", "collective", ...), usable as a Perfetto
/// category and parseable back via category_from_name().
std::string_view category_name(Category c);

/// Inverse of category_name(); unknown names map to kOther.
Category category_from_name(std::string_view name);

/// True for categories that count as communication time (p2p, collective,
/// wait, probe) in breakdowns and critical-path shares.
bool is_comm(Category c);

/// No domain op code (compute/idle/phase events).
inline constexpr std::int16_t kNoOp = -1;

struct Event {
  int rank = 0;
  /// Domain-defined operation code (minimpi: Primitive); kNoOp if none.
  std::int16_t op = kNoOp;
  Kind kind = Kind::kSpan;
  Category cat = Category::kOther;
  /// Peer rank for point-to-point ops; -1 for collectives/wildcards.
  int peer = -1;
  int tag = 0;
  /// Communicator context id (0 = world).
  int context = 0;
  std::size_t bytes = 0;
  /// Message edge leaving this event (a send); 0 = none.
  std::uint64_t seq_out = 0;
  /// Message edge completing at this event (a receive); 0 = none.
  std::uint64_t seq_in = 0;
  double t_start = 0.0;  // simulated seconds
  double t_end = 0.0;
  /// Wall-clock seconds since the recorder's epoch; 0.0 when wall capture
  /// is disabled (the default — keeps exports deterministic).
  double wall_start = 0.0;
  double wall_end = 0.0;
  /// Display name; must reference storage outliving the trace.
  std::string_view name;
};

/// A complete recorded run: every rank's events, rank-major (all of rank
/// 0's events in time order, then rank 1's, ...).
struct Trace {
  int nranks = 0;
  std::vector<Event> events;

  /// Copies `s` into this trace's string pool and returns a stable view
  /// (used by loaders; recorded traces reference static names directly).
  std::string_view intern(std::string_view s);

  /// Latest simulated end time across all events (0 for an empty trace).
  [[nodiscard]] double max_time() const;

 private:
  std::deque<std::string> names_;  // deque: stable addresses on growth
};

}  // namespace dipdc::obs
