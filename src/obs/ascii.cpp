#include "obs/ascii.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/format.hpp"

namespace dipdc::obs {

std::string render_timeline(std::span<const Event> events, int nranks,
                            double t_max, int width, const GlyphFn& glyph,
                            std::string_view legend) {
  width = std::max(width, 1);
  nranks = std::max(nranks, 0);
  if (t_max <= 0.0) {
    // Derive the horizon from the events themselves (callers often pass
    // max_sim_time(), which is 0 for an empty or all-zero-duration trace).
    for (const Event& e : events) t_max = std::max(t_max, e.t_end);
  }
  // Degenerate trace: no events, or every event instantaneous at t = 0.
  // Render a zero-width axis instead of dividing by the horizon.
  const bool degenerate = t_max <= 0.0;
  std::vector<std::string> rows(
      static_cast<std::size_t>(nranks),
      std::string(static_cast<std::size_t>(width), '.'));
  for (const Event& e : events) {
    if (e.rank < 0 || e.rank >= nranks) continue;
    const char g = glyph(e);
    if (g == '\0') continue;
    auto col = [&](double t) {
      if (degenerate) return 0;
      const double f = std::clamp(t / t_max, 0.0, 1.0);
      return std::min(width - 1, static_cast<int>(f * width));
    };
    const int c0 = col(e.t_start);
    const int c1 = std::max(c0, col(e.t_end));
    for (int c = c0; c <= c1; ++c) {
      rows[static_cast<std::size_t>(e.rank)][static_cast<std::size_t>(c)] = g;
    }
  }
  std::ostringstream os;
  os << "time 0 .. " << support::seconds(degenerate ? 0.0 : t_max) << legend
     << "\n";
  for (int r = 0; r < nranks; ++r) {
    os << "rank " << r << (r < 10 ? " " : "") << " |"
       << rows[static_cast<std::size_t>(r)] << "|\n";
  }
  return os.str();
}

std::string render_log(std::span<const Event> events,
                       std::size_t max_events) {
  std::vector<Event> sorted(events.begin(), events.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) {
                     return a.t_start < b.t_start;
                   });
  std::ostringstream os;
  std::size_t shown = 0;
  for (const Event& e : sorted) {
    if (shown++ >= max_events) {
      os << "... (" << sorted.size() - max_events << " more)\n";
      break;
    }
    os << "[" << support::seconds(e.t_start) << " - "
       << support::seconds(e.t_end) << "] rank " << e.rank << " " << e.name;
    if (e.peer >= 0) os << " peer " << e.peer;
    if (e.bytes > 0) os << " " << support::bytes(e.bytes);
    os << "\n";
  }
  return os.str();
}

}  // namespace dipdc::obs
