#include "obs/critical_path.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace dipdc::obs {

namespace {

bool on_graph(const Event& e) {
  return e.kind == Kind::kSpan && e.cat != Category::kPhase;
}

}  // namespace

double CriticalPath::comm_seconds() const {
  double s = 0.0;
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    if (is_comm(static_cast<Category>(c))) s += by_category[c];
  }
  return s;
}

double CriticalPath::compute_seconds() const {
  return by_category[static_cast<std::size_t>(Category::kCompute)];
}

double CriticalPath::comm_share() const {
  return makespan <= 0.0 ? 0.0 : comm_seconds() / makespan;
}

CriticalPath critical_path(const Trace& trace) {
  CriticalPath cp;

  // Index the graph: per-rank program order, send events by sequence id,
  // and collective instances keyed by (context, occurrence index).
  int nranks = trace.nranks;
  for (const Event& e : trace.events) nranks = std::max(nranks, e.rank + 1);
  std::vector<std::vector<int>> order(static_cast<std::size_t>(nranks));
  std::unordered_map<std::uint64_t, int> send_by_seq;
  std::map<std::pair<int, int>, std::vector<int>> instances;
  std::vector<int> pos_in_rank(trace.events.size(), 0);
  std::vector<std::pair<int, int>> instance_of(trace.events.size(),
                                               {-1, -1});
  std::vector<std::map<int, int>> next_occurrence(
      static_cast<std::size_t>(nranks));
  for (int i = 0; i < static_cast<int>(trace.events.size()); ++i) {
    const Event& e = trace.events[static_cast<std::size_t>(i)];
    if (!on_graph(e) || e.rank < 0) continue;
    auto& lane = order[static_cast<std::size_t>(e.rank)];
    pos_in_rank[static_cast<std::size_t>(i)] =
        static_cast<int>(lane.size());
    lane.push_back(i);
    if (e.seq_out != 0) send_by_seq.emplace(e.seq_out, i);
    if (e.cat == Category::kCollective) {
      const int occ = next_occurrence[static_cast<std::size_t>(e.rank)]
                          [e.context]++;
      instance_of[static_cast<std::size_t>(i)] = {e.context, occ};
      instances[{e.context, occ}].push_back(i);
    }
  }

  // End of the path: the event that finishes last (ties: lowest rank, then
  // earliest in the merged order — the first strict maximum encountered).
  int end = -1;
  for (int i = 0; i < static_cast<int>(trace.events.size()); ++i) {
    const Event& e = trace.events[static_cast<std::size_t>(i)];
    if (!on_graph(e) || e.rank < 0) continue;
    if (end < 0 || e.t_end > trace.events[static_cast<std::size_t>(end)].t_end) {
      end = i;
    }
  }
  if (end < 0) return cp;
  cp.makespan = trace.events[static_cast<std::size_t>(end)].t_end;
  cp.end_rank = trace.events[static_cast<std::size_t>(end)].rank;

  std::vector<char> visited(trace.events.size(), 0);
  int cur = end;
  double cursor = cp.makespan;
  CriticalPath::Via via = CriticalPath::Via::kEnd;
  while (cur >= 0) {
    visited[static_cast<std::size_t>(cur)] = 1;
    const Event& e = trace.events[static_cast<std::size_t>(cur)];

    // Candidate predecessors; the latest availability time binds.
    int next = -1;
    double avail = 0.0;
    CriticalPath::Via next_via = CriticalPath::Via::kEnd;
    auto consider = [&](int idx, double t, CriticalPath::Via v) {
      if (idx < 0 || visited[static_cast<std::size_t>(idx)] != 0) return;
      if (next < 0 || t > avail) {
        next = idx;
        avail = t;
        next_via = v;
      }
    };
    const int pos = pos_in_rank[static_cast<std::size_t>(cur)];
    if (pos > 0) {
      const int prev = order[static_cast<std::size_t>(e.rank)]
                            [static_cast<std::size_t>(pos - 1)];
      consider(prev, trace.events[static_cast<std::size_t>(prev)].t_end,
               CriticalPath::Via::kLocal);
    }
    if (e.seq_in != 0) {
      const auto it = send_by_seq.find(e.seq_in);
      if (it != send_by_seq.end()) {
        consider(it->second,
                 trace.events[static_cast<std::size_t>(it->second)].t_end,
                 CriticalPath::Via::kMessage);
      }
    }
    if (e.cat == Category::kCollective) {
      const auto key = instance_of[static_cast<std::size_t>(cur)];
      const auto it = instances.find(key);
      if (it != instances.end()) {
        // The gater: the participant that entered the collective last
        // (ties: lowest merged-order index, i.e. lowest rank).
        int gater = -1;
        for (const int idx : it->second) {
          if (idx == cur) continue;
          if (gater < 0 ||
              trace.events[static_cast<std::size_t>(idx)].t_start >
                  trace.events[static_cast<std::size_t>(gater)].t_start) {
            gater = idx;
          }
        }
        if (gater >= 0 &&
            trace.events[static_cast<std::size_t>(gater)].t_start >
                e.t_start) {
          consider(gater,
                   trace.events[static_cast<std::size_t>(gater)].t_start,
                   CriticalPath::Via::kCollective);
        }
      }
    }
    if (next < 0) avail = 0.0;

    // Attribute [avail, cursor]: the part overlapping this span goes to
    // its category, the gap before its start is untracked local work.
    const double hi = std::min(cursor, e.t_end);
    const double lo = std::min(cursor, std::max(e.t_start, avail));
    const double attributed = std::max(0.0, hi - lo);
    cp.by_category[static_cast<std::size_t>(e.cat)] += attributed;
    cp.untracked += std::max(0.0, lo - std::min(cursor, avail));
    cp.steps.push_back({&e, via, attributed});

    cursor = std::min(cursor, avail);
    via = next_via;
    cur = next;
  }
  cp.untracked += std::max(0.0, cursor);
  std::reverse(cp.steps.begin(), cp.steps.end());
  return cp;
}

std::vector<RankBreakdown> rank_breakdown(const Trace& trace) {
  int nranks = trace.nranks;
  for (const Event& e : trace.events) nranks = std::max(nranks, e.rank + 1);
  std::vector<RankBreakdown> out(static_cast<std::size_t>(nranks));
  double makespan = 0.0;
  for (int r = 0; r < nranks; ++r) out[static_cast<std::size_t>(r)].rank = r;
  for (const Event& e : trace.events) {
    if (!on_graph(e) || e.rank < 0) continue;
    RankBreakdown& rb = out[static_cast<std::size_t>(e.rank)];
    const double dur = std::max(0.0, e.t_end - e.t_start);
    if (is_comm(e.cat)) rb.comm += dur;
    else if (e.cat == Category::kCompute) rb.compute += dur;
    else if (e.cat == Category::kIdle) rb.idle += dur;
    rb.end_time = std::max(rb.end_time, e.t_end);
    makespan = std::max(makespan, e.t_end);
  }
  for (RankBreakdown& rb : out) {
    rb.untracked =
        std::max(0.0, rb.end_time - rb.comm - rb.compute - rb.idle);
    rb.tail = std::max(0.0, makespan - rb.end_time);
  }
  return out;
}

std::vector<const Event*> top_collectives(const Trace& trace,
                                          std::size_t k) {
  std::vector<const Event*> all;
  for (const Event& e : trace.events) {
    if (on_graph(e) && e.cat == Category::kCollective) all.push_back(&e);
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event* a, const Event* b) {
                     const double da = a->t_end - a->t_start;
                     const double db = b->t_end - b->t_start;
                     if (da != db) return da > db;
                     if (a->t_start != b->t_start) {
                       return a->t_start < b->t_start;
                     }
                     return a->rank < b->rank;
                   });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace dipdc::obs
