#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "support/format.hpp"

namespace dipdc::obs {

void Histogram::observe(double value) {
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  std::size_t bucket = 0;
  if (value >= 1.0) {
    const auto v = static_cast<std::uint64_t>(value);
    bucket = static_cast<std::size_t>(std::bit_width(v));
    bucket = std::min(bucket, kBuckets - 1);
  }
  ++buckets[bucket];
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank rounded up).
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  // The top rank is the observed maximum exactly (nearest-rank p100);
  // interpolation would report the middle of the max's bucket instead.
  if (target >= count) return max;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < std::max<std::uint64_t>(target, 1)) {
      seen += buckets[i];
      continue;
    }
    // Bucket bounds: bucket 0 is [<1], bucket i >= 1 is [2^(i-1), 2^i),
    // clamped into [min, max] so sparse tails do not overshoot.
    double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
    double hi = std::ldexp(1.0, static_cast<int>(i));
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi < lo) return lo;
    const double within =
        (static_cast<double>(std::max<std::uint64_t>(target, 1) - seen) -
         0.5) /
        static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
  }
  return max;
}

Registry::Entry& Registry::entry(std::string_view name, Type type) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      e.type = type;
      return e;
    }
  }
  Entry& e = entries_.emplace_back();
  e.name = std::string(name);
  e.type = type;
  return e;
}

const Registry::Entry* Registry::find(std::string_view name,
                                      Type type) const {
  for (const Entry& e : entries_) {
    if (e.name == name && e.type == type) return &e;
  }
  return nullptr;
}

void Registry::set_counter(std::string_view name, std::uint64_t value) {
  entry(name, Type::kCounter).value_u64 = value;
}

void Registry::add_counter(std::string_view name, std::uint64_t delta) {
  entry(name, Type::kCounter).value_u64 += delta;
}

void Registry::set_gauge(std::string_view name, double value,
                         std::string_view unit) {
  Entry& e = entry(name, Type::kGauge);
  e.value_f64 = value;
  e.unit = std::string(unit);
}

void Registry::observe(std::string_view name, double value) {
  entry(name, Type::kHistogram).hist.observe(value);
}

std::uint64_t Registry::counter(std::string_view name) const {
  const Entry* e = find(name, Type::kCounter);
  return e == nullptr ? 0 : e->value_u64;
}

double Registry::gauge(std::string_view name) const {
  const Entry* e = find(name, Type::kGauge);
  return e == nullptr ? 0.0 : e->value_f64;
}

const Histogram* Registry::histogram(std::string_view name) const {
  const Entry* e = find(name, Type::kHistogram);
  return e == nullptr ? nullptr : &e->hist;
}

std::string Registry::report() const {
  std::size_t name_width = 0;
  for (const Entry& e : entries_) {
    name_width = std::max(name_width, e.name.size());
  }
  std::ostringstream os;
  for (const Entry& e : entries_) {
    os << "  " << e.name
       << std::string(name_width - e.name.size() + 2, ' ');
    switch (e.type) {
      case Type::kCounter:
        os << support::count(e.value_u64);
        break;
      case Type::kGauge:
        os << support::fixed(e.value_f64, 6);
        if (!e.unit.empty()) os << " " << e.unit;
        break;
      case Type::kHistogram:
        os << "n=" << e.hist.count << " mean=" << support::fixed(e.hist.mean())
           << " min=" << support::fixed(e.hist.min)
           << " max=" << support::fixed(e.hist.max);
        break;
    }
    os << "\n";
  }
  return os.str();
}

std::string Registry::to_csv() const {
  std::ostringstream os;
  os << "name,type,value,count,sum,min,max\n";
  for (const Entry& e : entries_) {
    os << e.name << ",";
    switch (e.type) {
      case Type::kCounter:
        os << "counter," << e.value_u64 << ",,,,";
        break;
      case Type::kGauge:
        os << "gauge," << support::fixed(e.value_f64, 9) << ",,,,";
        break;
      case Type::kHistogram:
        os << "histogram,," << e.hist.count << ","
           << support::fixed(e.hist.sum, 9) << ","
           << support::fixed(e.hist.min, 9) << ","
           << support::fixed(e.hist.max, 9);
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dipdc::obs
