#include "obs/event.hpp"

#include <algorithm>

namespace dipdc::obs {

std::string_view category_name(Category c) {
  switch (c) {
    case Category::kP2P: return "p2p";
    case Category::kCollective: return "collective";
    case Category::kWait: return "wait";
    case Category::kProbe: return "probe";
    case Category::kCompute: return "compute";
    case Category::kIdle: return "idle";
    case Category::kPhase: return "phase";
    case Category::kOther: break;
  }
  return "other";
}

Category category_from_name(std::string_view name) {
  if (name == "p2p") return Category::kP2P;
  if (name == "collective") return Category::kCollective;
  if (name == "wait") return Category::kWait;
  if (name == "probe") return Category::kProbe;
  if (name == "compute") return Category::kCompute;
  if (name == "idle") return Category::kIdle;
  if (name == "phase") return Category::kPhase;
  return Category::kOther;
}

bool is_comm(Category c) {
  return c == Category::kP2P || c == Category::kCollective ||
         c == Category::kWait || c == Category::kProbe;
}

std::string_view Trace::intern(std::string_view s) {
  for (const std::string& existing : names_) {
    if (existing == s) return existing;
  }
  return names_.emplace_back(s);
}

double Trace::max_time() const {
  double m = 0.0;
  for (const Event& e : events) m = std::max(m, e.t_end);
  return m;
}

}  // namespace dipdc::obs
