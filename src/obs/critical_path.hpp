// Trace analyses: critical path through the send/recv happens-before
// graph, per-rank time breakdowns, and top-k slowest collectives.
//
// The happens-before graph has three edge kinds:
//  - program order: consecutive events on the same rank;
//  - message edges: a receive-completing event (seq_in) depends on the
//    matching send event (seq_out);
//  - collective synchronization: a collective span cannot complete before
//    the last participant entered it.  Participants of one collective
//    instance are grouped by (context, per-context occurrence index) — all
//    ranks of a communicator execute the same collective sequence, so the
//    i-th collective on context c is the same instance on every rank.
//
// The critical path is recovered with a backward longest-predecessor walk
// from the event that finishes last.  At every step the walk attributes
// the covered interval to the current event's category (comm for p2p /
// collective / wait / probe spans), and any gap between the chosen
// predecessor's availability time and the event's start to "untracked"
// (un-instrumented local work).  The attributed seconds always sum to the
// makespan.  Phase envelopes (Category::kPhase) overlap the events they
// contain and are excluded from the graph.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "obs/event.hpp"

namespace dipdc::obs {

struct CriticalPath {
  /// How the walk reached an event from its successor on the path.
  enum class Via { kEnd, kLocal, kMessage, kCollective };

  struct Step {
    const Event* event = nullptr;
    Via via = Via::kEnd;
    /// Seconds of [predecessor availability, event end] attributed to this
    /// event's category by the walk (0 when fully overlapped).
    double attributed = 0.0;
  };

  double makespan = 0.0;
  int end_rank = -1;
  /// Path events in chronological order (first event first).
  std::vector<Step> steps;
  /// Seconds attributed per Category (indexed by static_cast<size_t>).
  std::array<double, kCategoryCount> by_category{};
  /// Gaps between instrumented events on the path (local work the trace
  /// did not record).
  double untracked = 0.0;

  [[nodiscard]] double comm_seconds() const;
  [[nodiscard]] double compute_seconds() const;
  /// Fraction of the makespan attributed to communication categories.
  [[nodiscard]] double comm_share() const;
};

/// Computes the critical path of `trace`.  Deterministic: ties are broken
/// by rank, then by per-rank event order.  An empty trace yields an empty
/// path with makespan 0.
CriticalPath critical_path(const Trace& trace);

/// Per-rank attribution of the rank's own timeline: span durations summed
/// by category, plus the un-instrumented remainder and trailing idle time
/// up to the makespan.
struct RankBreakdown {
  int rank = 0;
  double comm = 0.0;      // p2p + collective + wait + probe spans
  double compute = 0.0;   // Category::kCompute spans
  double idle = 0.0;      // Category::kIdle spans
  double untracked = 0.0; // gaps between spans on this rank
  double tail = 0.0;      // makespan - this rank's last event end
  double end_time = 0.0;  // this rank's last event end
};

std::vector<RankBreakdown> rank_breakdown(const Trace& trace);

/// The `k` slowest collective spans, longest first (ties: earlier start,
/// then lower rank, first).
std::vector<const Event*> top_collectives(const Trace& trace, std::size_t k);

}  // namespace dipdc::obs
