#include "obs/perfetto.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dipdc::obs {

namespace {

// ---- Export ---------------------------------------------------------------

/// Microseconds with fixed 3-decimal (nanosecond) resolution; printf-based
/// so the text is deterministic for identical doubles.
std::string us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- Import: a minimal recursive-descent JSON parser ----------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::unique_ptr<JsonArray> array;
  std::unique_ptr<JsonObject> object;

  [[nodiscard]] const JsonValue* get(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : *object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double num_or(std::string_view key, double fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
  }
  [[nodiscard]] std::string_view str_or(std::string_view key,
                                        std::string_view fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->type == Type::kString
               ? std::string_view(v->str)
               : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::ostringstream os;
    os << "JSON parse error at offset " << pos_ << ": " << why;
    throw std::runtime_error(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.str = string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return {};
    return number();
  }

  JsonValue number() {
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) fail("invalid number");
    pos_ += static_cast<std::size_t>(end - start);
    if (pos_ > text_.size()) fail("number runs past end of input");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Our own exporter only escapes control characters; encode the
          // code point as UTF-8 (basic multilingual plane only).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    v.array = std::make_unique<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array->push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    v.object = std::make_unique<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object->emplace_back(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_perfetto_json(const Trace& trace) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"dipdc\","
     << "\"nranks\":" << trace.nranks << "},\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (int r = 0; r < trace.nranks; ++r) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << r
       << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << r
       << "}}";
  }
  for (const Event& e : trace.events) {
    sep();
    const bool instant = e.kind == Kind::kInstant;
    os << "{\"ph\":\"" << (instant ? 'i' : 'X') << "\",\"pid\":0,\"tid\":"
       << e.rank << ",\"ts\":" << us(e.t_start);
    if (instant) {
      os << ",\"s\":\"t\"";
    } else {
      os << ",\"dur\":" << us(e.t_end - e.t_start);
    }
    os << ",\"name\":\"" << escape_json(e.name) << "\",\"cat\":\""
       << category_name(e.cat) << "\",\"args\":{\"op\":" << e.op
       << ",\"peer\":" << e.peer << ",\"tag\":" << e.tag
       << ",\"ctx\":" << e.context << ",\"bytes\":" << e.bytes;
    if (e.seq_out != 0) os << ",\"seq_out\":" << e.seq_out;
    if (e.seq_in != 0) os << ",\"seq_in\":" << e.seq_in;
    if (e.wall_start != 0.0 || e.wall_end != 0.0) {
      os << ",\"wall_ts\":" << us(e.wall_start)
         << ",\"wall_dur\":" << us(e.wall_end - e.wall_start);
    }
    os << "}}";
    // Flow arrows: "s" leaves the send span, "f" (binding to the enclosing
    // slice) lands on the receive span.  Timestamps sit at each span's
    // start so the flow always binds to its own slice.
    if (e.seq_out != 0) {
      sep();
      os << "{\"ph\":\"s\",\"pid\":0,\"tid\":" << e.rank
         << ",\"ts\":" << us(e.t_start)
         << ",\"cat\":\"msg\",\"name\":\"msg\",\"id\":" << e.seq_out << "}";
    }
    if (e.seq_in != 0) {
      sep();
      os << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":" << e.rank
         << ",\"ts\":" << us(e.t_start)
         << ",\"cat\":\"msg\",\"name\":\"msg\",\"id\":" << e.seq_in << "}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

Trace parse_perfetto_json(std::string_view json) {
  const JsonValue root = JsonParser(json).parse();
  const JsonValue* events = root.get("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    throw std::runtime_error(
        "not a dipdc Perfetto trace: missing traceEvents array");
  }
  Trace trace;
  if (const JsonValue* other = root.get("otherData")) {
    trace.nranks = static_cast<int>(other->num_or("nranks", 0.0));
  }
  for (const JsonValue& ev : *events->array) {
    if (ev.type != JsonValue::Type::kObject) continue;
    const std::string_view ph = ev.str_or("ph", "");
    if (ph != "X" && ph != "i") continue;  // flows/metadata carry no data
    Event e;
    e.rank = static_cast<int>(ev.num_or("tid", 0.0));
    e.kind = ph == "i" ? Kind::kInstant : Kind::kSpan;
    e.t_start = ev.num_or("ts", 0.0) * 1e-6;
    e.t_end = e.t_start + ev.num_or("dur", 0.0) * 1e-6;
    e.cat = category_from_name(ev.str_or("cat", "other"));
    e.name = trace.intern(ev.str_or("name", ""));
    if (const JsonValue* args = ev.get("args")) {
      e.op = static_cast<std::int16_t>(
          args->num_or("op", static_cast<double>(kNoOp)));
      e.peer = static_cast<int>(args->num_or("peer", -1.0));
      e.tag = static_cast<int>(args->num_or("tag", 0.0));
      e.context = static_cast<int>(args->num_or("ctx", 0.0));
      e.bytes = static_cast<std::size_t>(args->num_or("bytes", 0.0));
      e.seq_out = static_cast<std::uint64_t>(args->num_or("seq_out", 0.0));
      e.seq_in = static_cast<std::uint64_t>(args->num_or("seq_in", 0.0));
    }
    trace.nranks = std::max(trace.nranks, e.rank + 1);
    trace.events.push_back(e);
  }
  return trace;
}

}  // namespace dipdc::obs
