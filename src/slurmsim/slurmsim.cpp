#include "slurmsim/slurmsim.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace dipdc::slurmsim {

namespace {

/// Parses SLURM time syntax: "SS", "MM:SS", "HH:MM:SS", or plain minutes
/// when there is no colon (SLURM's --time=<minutes>).
double parse_time(const std::string& text) {
  std::vector<long> parts;
  std::string cell;
  std::istringstream is(text);
  while (std::getline(is, cell, ':')) {
    parts.push_back(std::stol(cell));
  }
  DIPDC_REQUIRE(!parts.empty() && parts.size() <= 3,
                "unparseable --time value: " + text);
  if (parts.size() == 1) return static_cast<double>(parts[0]) * 60.0;
  if (parts.size() == 2) {
    return static_cast<double>(parts[0]) * 60.0 +
           static_cast<double>(parts[1]);
  }
  return static_cast<double>(parts[0]) * 3600.0 +
         static_cast<double>(parts[1]) * 60.0 + static_cast<double>(parts[2]);
}

/// Splits a directive line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

std::string value_of(const std::string& token) {
  const auto eq = token.find('=');
  return eq == std::string::npos ? std::string{} : token.substr(eq + 1);
}

}  // namespace

JobSpec parse_sbatch(const std::string& script) {
  JobSpec spec;
  bool explicit_work = false;
  std::istringstream is(script);
  std::string line;
  while (std::getline(is, line)) {
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "#SBATCH") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& t = tokens[i];
        if (t.rfind("--job-name=", 0) == 0) {
          spec.name = value_of(t);
        } else if (t == "-J" && i + 1 < tokens.size()) {
          spec.name = tokens[++i];
        } else if (t.rfind("--nodes=", 0) == 0) {
          spec.nodes = std::stoi(value_of(t));
        } else if (t == "-N" && i + 1 < tokens.size()) {
          spec.nodes = std::stoi(tokens[++i]);
        } else if (t.rfind("--ntasks-per-node=", 0) == 0) {
          spec.tasks_per_node = std::stoi(value_of(t));
        } else if (t.rfind("--time=", 0) == 0) {
          spec.time_limit = parse_time(value_of(t));
          if (!explicit_work) spec.work_seconds = spec.time_limit;
        } else if (t == "--exclusive") {
          spec.exclusive = true;
        } else if (t.rfind("--dependency=afterok:", 0) == 0) {
          spec.depends_on =
              std::stoi(t.substr(std::string("--dependency=afterok:").size()));
        }
      }
    } else if (tokens[0] == "#DIPDC") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& t = tokens[i];
        if (t.rfind("work=", 0) == 0) {
          spec.work_seconds = std::stod(value_of(t));
          explicit_work = true;
        } else if (t.rfind("bw-demand=", 0) == 0) {
          spec.mem_bw_demand = std::stod(value_of(t));
        }
      }
    }
  }
  DIPDC_REQUIRE(spec.nodes > 0 && spec.tasks_per_node > 0,
                "job must request at least one node and one task");
  return spec;
}

double SimulationResult::utilization(const ClusterSpec& cluster) const {
  if (makespan <= 0.0) return 0.0;
  double core_seconds = 0.0;
  for (const ScheduledJob& j : jobs) {
    core_seconds += static_cast<double>(j.spec.nodes) *
                    static_cast<double>(j.spec.tasks_per_node) *
                    j.run_time();
  }
  return core_seconds / (static_cast<double>(cluster.nodes) *
                         static_cast<double>(cluster.cores_per_node) *
                         makespan);
}

namespace {

struct RunningJob {
  std::size_t index;  // into the result vector
  JobSpec spec;
  std::vector<int> node_ids;
  double remaining_work;
  double start_time;
};

struct NodeState {
  int cores_used = 0;
  bool exclusive_held = false;
  int jobs_resident = 0;
  double bw_demand = 0.0;
};

class Simulator {
 public:
  Simulator(const ClusterSpec& cluster, Policy policy)
      : cluster_(cluster),
        policy_(policy),
        node_states_(static_cast<std::size_t>(cluster.nodes)) {
    DIPDC_REQUIRE(cluster.nodes > 0 && cluster.cores_per_node > 0,
                  "cluster must have nodes and cores");
  }

  SimulationResult run(std::vector<JobSpec> jobs) {
    SimulationResult result;
    result.jobs.resize(jobs.size());
    finished_.assign(jobs.size(), false);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      DIPDC_REQUIRE(jobs[i].nodes <= cluster_.nodes,
                    "job requests more nodes than the cluster has");
      DIPDC_REQUIRE(jobs[i].tasks_per_node <= cluster_.cores_per_node,
                    "job requests more tasks per node than cores");
      DIPDC_REQUIRE(jobs[i].depends_on < static_cast<int>(jobs.size()) &&
                        jobs[i].depends_on != static_cast<int>(i),
                    "job dependency must name another submitted job");
      result.jobs[i].spec = jobs[i];
    }

    // Arrival order: by submit time, ties by input order.
    std::vector<std::size_t> arrivals(jobs.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) arrivals[i] = i;
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [&](std::size_t a, std::size_t b) {
                       return jobs[a].submit_time < jobs[b].submit_time;
                     });

    std::size_t next_arrival = 0;
    double now = 0.0;

    while (next_arrival < arrivals.size() || !queue_.empty() ||
           !running_.empty()) {
      // Next event: an arrival or a completion.
      double next_time = std::numeric_limits<double>::infinity();
      if (next_arrival < arrivals.size()) {
        next_time = jobs[arrivals[next_arrival]].submit_time;
      }
      for (const RunningJob& r : running_) {
        next_time = std::min(next_time, now + r.remaining_work / rate(r));
      }
      DIPDC_REQUIRE(next_time < std::numeric_limits<double>::infinity(),
                    "scheduler stalled: queued jobs can never start "
                    "(circular or unsatisfiable dependencies?)");
      next_time = std::max(next_time, now);

      // Advance progress of running jobs to next_time.
      for (RunningJob& r : running_) {
        r.remaining_work -= (next_time - now) * rate(r);
      }
      now = next_time;

      // Completions at `now` (tolerate rounding).
      for (std::size_t i = 0; i < running_.size();) {
        if (running_[i].remaining_work <= 1e-9 * running_[i].spec.work_seconds
            || running_[i].remaining_work <= 1e-12) {
          finish(running_[i], now, result);
          running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }

      // Arrivals at `now`.
      while (next_arrival < arrivals.size() &&
             jobs[arrivals[next_arrival]].submit_time <= now) {
        queue_.push_back(arrivals[next_arrival]);
        ++next_arrival;
      }

      start_eligible_jobs(jobs, now, result);
      result.makespan = std::max(result.makespan, now);
    }
    return result;
  }

 private:
  /// Progress rate of a running job: the worst bandwidth oversubscription
  /// across its nodes dilates its execution.
  [[nodiscard]] double rate(const RunningJob& r) const {
    double worst = 1.0;
    for (const int n : r.node_ids) {
      worst = std::max(worst,
                       node_states_[static_cast<std::size_t>(n)].bw_demand);
    }
    return 1.0 / worst;
  }

  /// Nodes on which `spec` could be placed right now.
  [[nodiscard]] std::vector<int> fit_now(const JobSpec& spec) const {
    std::vector<int> chosen;
    for (int n = 0; n < cluster_.nodes &&
                    chosen.size() < static_cast<std::size_t>(spec.nodes);
         ++n) {
      const NodeState& s = node_states_[static_cast<std::size_t>(n)];
      if (s.exclusive_held) continue;
      if (spec.exclusive && s.jobs_resident > 0) continue;
      if (s.cores_used + spec.tasks_per_node > cluster_.cores_per_node) {
        continue;
      }
      chosen.push_back(n);
    }
    if (chosen.size() < static_cast<std::size_t>(spec.nodes)) chosen.clear();
    return chosen;
  }

  void place(std::size_t index, const JobSpec& spec, std::vector<int> nodes,
             double now, SimulationResult& result) {
    for (const int n : nodes) {
      NodeState& s = node_states_[static_cast<std::size_t>(n)];
      s.cores_used += spec.tasks_per_node;
      s.jobs_resident += 1;
      s.bw_demand += spec.mem_bw_demand;
      if (spec.exclusive) s.exclusive_held = true;
    }
    result.jobs[index].start_time = now;
    result.jobs[index].node_ids = nodes;
    running_.push_back(RunningJob{index, spec, std::move(nodes),
                                  spec.work_seconds, now});
  }

  void finish(const RunningJob& r, double now, SimulationResult& result) {
    finished_[r.index] = true;
    for (const int n : r.node_ids) {
      NodeState& s = node_states_[static_cast<std::size_t>(n)];
      s.cores_used -= r.spec.tasks_per_node;
      s.jobs_resident -= 1;
      s.bw_demand -= r.spec.mem_bw_demand;
      if (r.spec.exclusive) s.exclusive_held = false;
    }
    result.jobs[r.index].finish_time = now;
  }

  /// A queued job may start only once its dependency has completed
  /// (dependency-held jobs are skipped, as SLURM holds them).
  [[nodiscard]] bool eligible(const JobSpec& spec) const {
    return spec.depends_on < 0 ||
           finished_[static_cast<std::size_t>(spec.depends_on)];
  }

  /// Starts queued jobs according to the policy.
  void start_eligible_jobs(const std::vector<JobSpec>& jobs, double now,
                           SimulationResult& result) {
    // Strict FIFO over *eligible* jobs: the first eligible job that does
    // not fit blocks everything behind it.
    for (std::size_t qi = 0; qi < queue_.size();) {
      const std::size_t idx = queue_[qi];
      if (!eligible(jobs[idx])) {
        ++qi;  // dependency-held: skip without blocking the queue
        continue;
      }
      auto nodes = fit_now(jobs[idx]);
      if (nodes.empty()) break;
      place(idx, jobs[idx], std::move(nodes), now, result);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
    }
    if (policy_ != Policy::kBackfill || queue_.empty()) return;

    // EASY backfill.  Compute the head job's shadow time: the earliest
    // time enough nodes could be free assuming every running job ends at
    // its time limit, and which nodes would then be claimed.  The "head"
    // is the first *eligible* queued job.
    std::size_t head_qi = queue_.size();
    for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
      if (eligible(jobs[queue_[qi]])) {
        head_qi = qi;
        break;
      }
    }
    if (head_qi == queue_.size()) return;  // everything dependency-held
    const JobSpec& head = jobs[queue_[head_qi]];
    std::vector<double> release(static_cast<std::size_t>(cluster_.nodes),
                                now);
    for (const RunningJob& r : running_) {
      const double bound = r.start_time + r.spec.time_limit;
      for (const int n : r.node_ids) {
        auto& rel = release[static_cast<std::size_t>(n)];
        rel = std::max(rel, bound);
      }
    }
    // Nodes sorted by release time; the head claims the first `nodes`.
    std::vector<int> order(static_cast<std::size_t>(cluster_.nodes));
    for (int n = 0; n < cluster_.nodes; ++n) {
      order[static_cast<std::size_t>(n)] = n;
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return release[static_cast<std::size_t>(a)] <
             release[static_cast<std::size_t>(b)];
    });
    const auto head_nodes = static_cast<std::size_t>(head.nodes);
    const double shadow =
        release[static_cast<std::size_t>(order[head_nodes - 1])];
    std::vector<bool> reserved(static_cast<std::size_t>(cluster_.nodes),
                               false);
    for (std::size_t i = 0; i < head_nodes; ++i) {
      reserved[static_cast<std::size_t>(order[i])] = true;
    }

    // Try every job behind the head.
    for (std::size_t qi = head_qi + 1; qi < queue_.size();) {
      const std::size_t cand = queue_[qi];
      const JobSpec& spec = jobs[cand];
      if (!eligible(spec)) {
        ++qi;
        continue;
      }
      auto nodes = fit_now(spec);
      bool ok = !nodes.empty();
      if (ok && now + spec.time_limit > shadow) {
        // Would still be running at the shadow time: it must avoid the
        // reserved nodes entirely.
        for (const int n : nodes) {
          if (reserved[static_cast<std::size_t>(n)]) {
            ok = false;
            break;
          }
        }
        // Try to re-fit on unreserved nodes only.
        if (!ok) {
          std::vector<int> alt;
          for (int n = 0; n < cluster_.nodes &&
                          alt.size() < static_cast<std::size_t>(spec.nodes);
               ++n) {
            if (reserved[static_cast<std::size_t>(n)]) continue;
            const NodeState& s = node_states_[static_cast<std::size_t>(n)];
            if (s.exclusive_held) continue;
            if (spec.exclusive && s.jobs_resident > 0) continue;
            if (s.cores_used + spec.tasks_per_node >
                cluster_.cores_per_node) {
              continue;
            }
            alt.push_back(n);
          }
          if (alt.size() == static_cast<std::size_t>(spec.nodes)) {
            nodes = std::move(alt);
            ok = true;
          }
        }
      }
      if (ok) {
        place(cand, spec, std::move(nodes), now, result);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(qi));
      } else {
        ++qi;
      }
    }
  }

  ClusterSpec cluster_;
  Policy policy_;
  std::vector<bool> finished_;
  std::vector<NodeState> node_states_;
  std::vector<RunningJob> running_;
  std::vector<std::size_t> queue_;  // indices into the job list
};

}  // namespace

SimulationResult simulate(const ClusterSpec& cluster, Policy policy,
                          std::vector<JobSpec> jobs) {
  Simulator sim(cluster, policy);
  return sim.run(std::move(jobs));
}

}  // namespace dipdc::slurmsim
