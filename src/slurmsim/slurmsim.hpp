// A batch-scheduler simulator in the spirit of SLURM.
//
// The paper ships an ancillary module introducing the SLURM scheduler, and
// Module 4's third activity has students experiment with resource
// allocations (dedicated vs. shared nodes, node counts, co-scheduling).
// The quiz question behind Figure 1 — which program should share a node
// with a stranger's job — is about memory-bandwidth interference between
// co-scheduled jobs ("terrible twins").  This simulator reproduces those
// mechanics: node/core allocation, FIFO and EASY-backfill scheduling,
// exclusive allocations, and a bandwidth-contention progress model where a
// job's execution rate on a node is 1/max(1, total bandwidth demand).
#pragma once

#include <string>
#include <vector>

namespace dipdc::slurmsim {

/// One batch job, as described by an #SBATCH script.
struct JobSpec {
  std::string name = "job";
  int nodes = 1;
  int tasks_per_node = 1;
  /// Requested wall-time limit (seconds); backfill reservations use this.
  double time_limit = 3600.0;
  /// Actual work content (seconds of execution on uncontended resources).
  double work_seconds = 3600.0;
  /// Demand on a node's memory bandwidth, as a fraction of the node's
  /// bandwidth, per occupied node (0 = pure compute, 1 = saturates a node).
  double mem_bw_demand = 0.0;
  bool exclusive = false;
  double submit_time = 0.0;
  /// Index (into the submitted job list) of a job that must finish before
  /// this one may start (SLURM's --dependency=afterok); -1 = none.
  int depends_on = -1;
};

/// Parses the #SBATCH directives of a job script.  Recognised directives:
///   #SBATCH --job-name=<s> | -J <s>
///   #SBATCH --nodes=<n>    | -N <n>
///   #SBATCH --ntasks-per-node=<n>
///   #SBATCH --time=<[[HH:]MM:]SS | minutes>
///   #SBATCH --exclusive
///   #SBATCH --dependency=afterok:<job-index>
/// plus this repository's extension for the interference model:
///   #DIPDC work=<seconds> bw-demand=<fraction>
JobSpec parse_sbatch(const std::string& script);

struct ClusterSpec {
  int nodes = 4;
  int cores_per_node = 32;
};

enum class Policy {
  kFifo,      // strict order: the queue head blocks everyone behind it
  kBackfill,  // EASY backfill: later jobs may jump ahead if they cannot
              // delay the queue head's earliest possible start
};

/// Outcome for one job.
struct ScheduledJob {
  JobSpec spec;
  double start_time = -1.0;
  double finish_time = -1.0;
  std::vector<int> node_ids;

  [[nodiscard]] double wait_time() const {
    return start_time - spec.submit_time;
  }
  [[nodiscard]] double run_time() const { return finish_time - start_time; }
  /// Execution-time dilation caused by interference (1.0 = undisturbed).
  [[nodiscard]] double slowdown() const {
    return spec.work_seconds > 0.0 ? run_time() / spec.work_seconds : 1.0;
  }
};

struct SimulationResult {
  std::vector<ScheduledJob> jobs;  // in input order
  double makespan = 0.0;

  /// Core-seconds of useful allocation divided by cluster capacity over the
  /// makespan.
  [[nodiscard]] double utilization(const ClusterSpec& cluster) const;
};

/// Event-driven simulation of `jobs` on `cluster` under `policy`.
/// Jobs exceeding their time limit are *not* killed (the modules never ask
/// for that); limits matter only for backfill reservations.
SimulationResult simulate(const ClusterSpec& cluster, Policy policy,
                          std::vector<JobSpec> jobs);

}  // namespace dipdc::slurmsim
