// Dispatched kernels for module 3's splitter machinery: the rank-0
// histogram pass and the per-element bucket classification (splitter
// scan).  Both produce integers, so bit-identity here means "the same
// bins and buckets" — guaranteed because the offset arithmetic and the
// comparisons are the identical IEEE operations in both paths (see
// detail/canonical.hpp for the scalar reference).
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/dispatch.hpp"

namespace dipdc::kernels {

/// Increments hist[bin(v)] for every value: bin = clamp((v - lo) /
/// bin_width, 0, bins - 1) truncated toward zero.  `hist` has `bins`
/// entries and is NOT cleared first (callers can accumulate).
void histogram(Isa isa, const double* values, std::size_t n, double lo,
               double bin_width, std::size_t bins, std::uint64_t* hist);

/// out[i] = number of splitters <= values[i] (std::upper_bound's index
/// over the ascending `splitters`): the destination bucket/rank of each
/// element.  Requires nsplit < 2^32.
void bucket_indices(Isa isa, const double* values, std::size_t n,
                    const double* splitters, std::size_t nsplit,
                    std::uint32_t* out);

namespace detail {
void histogram_avx2(const double* values, std::size_t n, double lo,
                    double bin_width, std::size_t bins, std::uint64_t* hist);
void bucket_indices_avx2(const double* values, std::size_t n,
                         const double* splitters, std::size_t nsplit,
                         std::uint32_t* out);
}  // namespace detail

}  // namespace dipdc::kernels
