// Scalar implementations + ISA dispatch for the sort-module kernels.
// Compiled with -ffp-contract=off (see distance.cpp) — moot for the
// integer results here, but the whole library keeps one contract.
#include "kernels/sort.hpp"

#include "kernels/detail/canonical.hpp"

namespace dipdc::kernels {

void histogram(Isa isa, const double* values, std::size_t n, double lo,
               double bin_width, std::size_t bins, std::uint64_t* hist) {
  if (isa == Isa::kSimd) {
    detail::histogram_avx2(values, n, lo, bin_width, bins, hist);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    ++hist[detail::histogram_bin_ref(values[i], lo, bin_width, bins)];
  }
}

void bucket_indices(Isa isa, const double* values, std::size_t n,
                    const double* splitters, std::size_t nsplit,
                    std::uint32_t* out) {
  if (isa == Isa::kSimd) {
    detail::bucket_indices_avx2(values, n, splitters, nsplit, out);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(
        detail::bucket_of_ref(values[i], splitters, nsplit));
  }
}

}  // namespace dipdc::kernels
