// Scalar implementations + ISA dispatch for the k-means kernels.
// Compiled with -ffp-contract=off (see distance.cpp).
#include "kernels/kmeans.hpp"

#include <algorithm>
#include <limits>

#include "kernels/detail/canonical.hpp"

namespace dipdc::kernels {

namespace {

std::size_t nearest_scalar(const double* point, const double* centroids,
                           std::size_t k, std::size_t dim) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < k; ++c) {
    const double d2 =
        detail::squared_distance_ref(point, centroids + c * dim, dim);
    if (d2 < best_d) {
      best_d = d2;
      best = c;
    }
  }
  return best;
}

void assign_scalar(const double* points, std::size_t n, std::size_t dim,
                   const double* centroids, std::size_t k,
                   std::size_t* assignment, double* sums, double* counts) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* pt = points + i * dim;
    const std::size_t c = nearest_scalar(pt, centroids, k, dim);
    assignment[i] = c;
    if (sums != nullptr) {
      double* sum_row = sums + c * dim;
      for (std::size_t j = 0; j < dim; ++j) sum_row[j] += pt[j];
      counts[c] += 1.0;
    }
  }
}

double update_scalar(double* centroids, const double* sums,
                     const double* counts, std::size_t k, std::size_t dim) {
  double movement = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] <= 0.0) continue;
    double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
    const double* sum_row = sums + c * dim;
    double* cent = centroids + c * dim;
    std::size_t d = 0;
    for (; d + detail::kLanes <= dim; d += detail::kLanes) {
      const double n0 = sum_row[d] / counts[c];
      const double n1 = sum_row[d + 1] / counts[c];
      const double n2 = sum_row[d + 2] / counts[c];
      const double n3 = sum_row[d + 3] / counts[c];
      const double d0 = n0 - cent[d];
      const double d1 = n1 - cent[d + 1];
      const double d2 = n2 - cent[d + 2];
      const double d3 = n3 - cent[d + 3];
      l0 += d0 * d0;
      l1 += d1 * d1;
      l2 += d2 * d2;
      l3 += d3 * d3;
      cent[d] = n0;
      cent[d + 1] = n1;
      cent[d + 2] = n2;
      cent[d + 3] = n3;
    }
    double d2sum = (l0 + l2) + (l1 + l3);
    for (; d < dim; ++d) {
      const double next = sum_row[d] / counts[c];
      const double diff = next - cent[d];
      d2sum += diff * diff;
      cent[d] = next;
    }
    movement = std::max(movement, d2sum);
  }
  return movement;
}

}  // namespace

void assign_points(Isa isa, const double* points, std::size_t n,
                   std::size_t dim, const double* centroids, std::size_t k,
                   std::size_t* assignment, double* sums, double* counts) {
  if (isa == Isa::kSimd) {
    detail::assign_points_avx2(points, n, dim, centroids, k, assignment,
                               sums, counts);
  } else {
    assign_scalar(points, n, dim, centroids, k, assignment, sums, counts);
  }
}

std::size_t nearest_centroid(Isa isa, const double* point,
                             const double* centroids, std::size_t k,
                             std::size_t dim) {
  std::size_t out = 0;
  assign_points(isa, point, 1, dim, centroids, k, &out, nullptr, nullptr);
  return out;
}

double update_centroids(Isa isa, double* centroids, const double* sums,
                        const double* counts, std::size_t k,
                        std::size_t dim) {
  if (isa == Isa::kSimd) {
    return detail::update_centroids_avx2(centroids, sums, counts, k, dim);
  }
  return update_scalar(centroids, sums, counts, k, dim);
}

}  // namespace dipdc::kernels
