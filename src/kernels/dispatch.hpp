// Runtime ISA dispatch for the compute kernels (src/kernels).
//
// The data-intensive modules' hot loops (distance matrix, k-means
// assignment, sort classification) exist in two implementations: a
// portable scalar path and an AVX2 path compiled into a separate
// translation unit with -mavx2.  Which one runs is decided once, at
// startup, from cpuid — never per call — and can be forced for
// experiments and CI:
//
//   * `Policy::kScalar` / `Policy::kSimd`: an explicit request (the
//     dipdc `--kernel=` flag and module `Config::kernel` fields).
//     Forcing SIMD on a host without AVX2 support is an error.
//   * `Policy::kAuto` (the default): the `DIPDC_KERNEL` environment
//     variable if set ("scalar" or "simd"; "simd" quietly falls back to
//     scalar when unsupported so a single CI matrix works everywhere),
//     otherwise whatever cpuid says.
//
// The two paths are contractually **bit-identical**: every kernel fixes
// its floating-point accumulation order to the 4-lane scheme described
// in kernels/detail/canonical.hpp, and the kernel TUs are compiled with
// -ffp-contract=off so no path gains an FMA the other lacks.  Switching
// `--kernel=` must never change a checksum, an assignment, or an
// iteration count — only the wall clock.
#pragma once

#include <string_view>

namespace dipdc::kernels {

/// The instruction set a kernel call actually executes with.
enum class Isa {
  kScalar,  // portable C++, 4-lane blocked accumulation
  kSimd,    // AVX2 intrinsics, same accumulation order
};

/// What the caller asked for; resolved to an Isa once per run.
enum class Policy {
  kAuto,    // DIPDC_KERNEL env override, else cpuid
  kScalar,  // force the portable path
  kSimd,    // force AVX2 (error if the host lacks it)
};

/// True when the AVX2 path is compiled in *and* the CPU reports AVX2.
[[nodiscard]] bool simd_supported();

/// Resolves a policy to the ISA that will run.  kAuto consults
/// DIPDC_KERNEL and then cpuid; kSimd throws support::PreconditionError
/// when `simd_supported()` is false.
[[nodiscard]] Isa resolve(Policy policy);

/// Parses "auto" | "scalar" | "simd" (throws support::PreconditionError
/// on anything else).
[[nodiscard]] Policy parse_policy(std::string_view text);

[[nodiscard]] const char* isa_name(Isa isa);
[[nodiscard]] const char* policy_name(Policy policy);

}  // namespace dipdc::kernels
