// Dispatched distance-matrix kernels (module 2's hot loop).
//
// All entry points take the ISA resolved once per run (kernels::resolve)
// and write Euclidean distances; scalar and SIMD produce identical bits
// (see detail/canonical.hpp for the accumulation contract).  These are
// the *untraced* fast paths — the cachesim-traced loop nests stay as
// templates in modules/distmatrix/module2.hpp, built on the same
// canonical reference helpers, so tracing never perturbs the numbers.
#pragma once

#include <cstddef>

#include "kernels/dispatch.hpp"

namespace dipdc::kernels {

/// Distances of one query point `a` against points [j_begin, j_end) of
/// the n x dim array `pts`; out_row[j] = ‖a − pts_j‖ for each computed j
/// (cells outside the range are untouched).  The AVX2 path blocks 4
/// partner points per pass over the 90-dim inner product.
void distance_row(Isa isa, const double* a, const double* pts,
                  std::size_t dim, std::size_t j_begin, std::size_t j_end,
                  double* out_row);

/// The module-2 block kernel: rows [row_begin, row_end) of the n x dim
/// dataset `all` against every point, into `out` of shape
/// (row_end - row_begin) x n.  `tile` = 0 runs the row-wise sweep;
/// otherwise partner points are visited in j-tiles of `tile` points
/// (the cache-blocked variant).  The AVX2 path runs a register-blocked
/// 4-row x 2-point micro-kernel inside each tile.
void distance_rows(Isa isa, const double* all, std::size_t dim,
                   std::size_t n, std::size_t row_begin, std::size_t row_end,
                   std::size_t tile, double* out);

/// Canonical ‖a − b‖² through the dispatcher (k-means++ seeding, inertia).
[[nodiscard]] double squared_distance(Isa isa, const double* a,
                                      const double* b, std::size_t dim);

namespace detail {
void distance_row_avx2(const double* a, const double* pts, std::size_t dim,
                       std::size_t j_begin, std::size_t j_end,
                       double* out_row);
void distance_rows_avx2(const double* all, std::size_t dim, std::size_t n,
                        std::size_t row_begin, std::size_t row_end,
                        std::size_t tile, double* out);
double squared_distance_avx2(const double* a, const double* b,
                             std::size_t dim);
}  // namespace detail

}  // namespace dipdc::kernels
