// Dispatched point-in-rect filter kernel for module 4's serving-mode
// brute-force shard scan.  The points live as two parallel coordinate
// arrays (structure-of-arrays: one contiguous stream of x, one of y), so
// the AVX2 path can compare four points per instruction without a
// gather.  The result is an integer match count, so bit-identity between
// the paths means "the same count" — guaranteed because both perform the
// identical IEEE comparisons: the closed-rectangle test
//   x >= xmin && x <= xmax && y >= ymin && y <= ymax
// with ordered (NaN-rejecting) semantics, matching spatial::
// Rect::contains exactly, including boundary points and NaN coordinates.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/dispatch.hpp"

namespace dipdc::kernels {

/// Number of points (xs[i], ys[i]) inside the closed rectangle
/// [xmin, xmax] x [ymin, ymax].  An invalid window (min > max, or any
/// NaN bound) matches nothing; NaN coordinates never match.
std::uint64_t count_in_rect(Isa isa, const double* xs, const double* ys,
                            std::size_t n, double xmin, double ymin,
                            double xmax, double ymax);

namespace detail {

/// Scalar reference for one point (shared by the scalar path, the AVX2
/// tail, and the tests' oracle).
inline bool in_rect_ref(double x, double y, double xmin, double ymin,
                        double xmax, double ymax) {
  return x >= xmin && x <= xmax && y >= ymin && y <= ymax;
}

std::uint64_t count_in_rect_avx2(const double* xs, const double* ys,
                                 std::size_t n, double xmin, double ymin,
                                 double xmax, double ymax);

}  // namespace detail

}  // namespace dipdc::kernels
