// AVX2 sort-module kernels: vectorized bin computation for the
// histogram pass and a compare-and-count splitter scan (4 elements per
// iteration, one broadcast comparison per splitter).  Integer results,
// identical to the scalar reference for every input including values
// equal to a splitter, out-of-domain values, and NaNs (max_pd's NaN
// propagation matches the scalar clamp's ordering).
#include "kernels/sort.hpp"

#if defined(__AVX2__)

#include "kernels/detail/avx2.hpp"
#include "kernels/detail/canonical.hpp"

namespace dipdc::kernels::detail {

void histogram_avx2(const double* values, std::size_t n, double lo,
                    double bin_width, std::size_t bins, std::uint64_t* hist) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vw = _mm256_set1_pd(bin_width);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vtop = _mm256_set1_pd(static_cast<double>(bins - 1));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d off = _mm256_div_pd(
        _mm256_sub_pd(_mm256_loadu_pd(values + i), vlo), vw);
    // max(off, 0) first (NaN -> 0, as the scalar '!(offset > 0)' does),
    // then cap at bins - 1; truncate toward zero like the scalar cast.
    const __m256d clamped =
        _mm256_min_pd(_mm256_max_pd(off, vzero), vtop);
    const __m128i bin = _mm256_cvttpd_epi32(clamped);
    ++hist[static_cast<std::uint32_t>(_mm_extract_epi32(bin, 0))];
    ++hist[static_cast<std::uint32_t>(_mm_extract_epi32(bin, 1))];
    ++hist[static_cast<std::uint32_t>(_mm_extract_epi32(bin, 2))];
    ++hist[static_cast<std::uint32_t>(_mm_extract_epi32(bin, 3))];
  }
  for (; i < n; ++i) {
    ++hist[histogram_bin_ref(values[i], lo, bin_width, bins)];
  }
}

void bucket_indices_avx2(const double* values, std::size_t n,
                         const double* splitters, std::size_t nsplit,
                         std::uint32_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    __m256i count = _mm256_setzero_si256();
    for (std::size_t s = 0; s < nsplit; ++s) {
      // v >= splitter  <=>  splitter <= v; all-ones mask is -1 per lane,
      // so subtracting it counts the satisfied comparisons.
      const __m256d mask =
          _mm256_cmp_pd(v, _mm256_set1_pd(splitters[s]), _CMP_GE_OQ);
      count = _mm256_sub_epi64(count, _mm256_castpd_si256(mask));
    }
    out[i] = static_cast<std::uint32_t>(_mm256_extract_epi64(count, 0));
    out[i + 1] = static_cast<std::uint32_t>(_mm256_extract_epi64(count, 1));
    out[i + 2] = static_cast<std::uint32_t>(_mm256_extract_epi64(count, 2));
    out[i + 3] = static_cast<std::uint32_t>(_mm256_extract_epi64(count, 3));
  }
  for (; i < n; ++i) {
    out[i] =
        static_cast<std::uint32_t>(bucket_of_ref(values[i], splitters,
                                                 nsplit));
  }
}

}  // namespace dipdc::kernels::detail

#else  // !__AVX2__

#include <cstdlib>

namespace dipdc::kernels::detail {

void histogram_avx2(const double*, std::size_t, double, double, std::size_t,
                    std::uint64_t*) {
  std::abort();
}
void bucket_indices_avx2(const double*, std::size_t, const double*,
                         std::size_t, std::uint32_t*) {
  std::abort();
}

}  // namespace dipdc::kernels::detail

#endif  // __AVX2__
