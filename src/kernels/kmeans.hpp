// Dispatched k-means kernels (module 5's hot loops).
//
// The assignment phase — k squared-distance evaluations per point — is
// the compute-bound side of the module's compute/communication
// trade-off; the AVX2 path keeps a block of 4 centroids' accumulators in
// registers and streams each point through them once.  Scalar and SIMD
// are bit-identical (detail/canonical.hpp), so the clustering, iteration
// count and inertia never depend on the ISA.
#pragma once

#include <cstddef>

#include "kernels/dispatch.hpp"

namespace dipdc::kernels {

/// Assigns each of the n dim-dimensional `points` to its nearest of the
/// k `centroids` (squared Euclidean metric, ties to the lowest index —
/// evaluated in ascending centroid order with a strict '<', exactly like
/// the classic scalar loop).  When `sums`/`counts` are non-null (k x dim
/// and k, both caller-zeroed), each point is also accumulated into its
/// cluster's running sum and count — the fused assign+accumulate pass of
/// a Lloyd iteration.
void assign_points(Isa isa, const double* points, std::size_t n,
                   std::size_t dim, const double* centroids, std::size_t k,
                   std::size_t* assignment, double* sums, double* counts);

/// Nearest-centroid index of a single point (same contract).
[[nodiscard]] std::size_t nearest_centroid(Isa isa, const double* point,
                                           const double* centroids,
                                           std::size_t k, std::size_t dim);

/// Moves `centroids` to sums/counts means (empty clusters stay put) and
/// returns the maximum squared centroid movement.
[[nodiscard]] double update_centroids(Isa isa, double* centroids,
                                      const double* sums,
                                      const double* counts, std::size_t k,
                                      std::size_t dim);

namespace detail {
void assign_points_avx2(const double* points, std::size_t n,
                        std::size_t dim, const double* centroids,
                        std::size_t k, std::size_t* assignment, double* sums,
                        double* counts);
double update_centroids_avx2(double* centroids, const double* sums,
                             const double* counts, std::size_t k,
                             std::size_t dim);
}  // namespace detail

}  // namespace dipdc::kernels
