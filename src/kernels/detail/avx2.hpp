// Shared helpers for the AVX2 translation units.  Only included from
// kernels/*_avx2.cpp; everything here is guarded on __AVX2__ so those
// TUs still compile (as never-called aborting stubs) on toolchains or
// architectures without the flag.
#pragma once

#if defined(__AVX2__)

#include <immintrin.h>

namespace dipdc::kernels::detail {

/// Reduces the 4 lane accumulators [l0, l1, l2, l3] exactly as the
/// canonical contract prescribes: (l0 + l2) + (l1 + l3).
inline double reduce_lanes(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);     // [l0, l1]
  const __m128d hi = _mm256_extractf128_pd(acc, 1);   // [l2, l3]
  const __m128d pair = _mm_add_pd(lo, hi);            // [l0+l2, l1+l3]
  const __m128d upper = _mm_unpackhi_pd(pair, pair);  // [l1+l3, l1+l3]
  return _mm_cvtsd_f64(_mm_add_sd(pair, upper));
}

/// One canonical block step: acc += (a - b)^2, element-wise, as explicit
/// sub/mul/add (this TU is compiled with -ffp-contract=off so the
/// compiler cannot fuse the mul+add behind our back).
inline __m256d accumulate_sq_diff(__m256d acc, __m256d a, __m256d b) {
  const __m256d diff = _mm256_sub_pd(a, b);
  return _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
}

/// Transposed reduction of 4 accumulator vectors into one vector
/// [r(a), r(b), r(c), r(d)], where each lane is bit-identical to
/// reduce_lanes of that accumulator: the cross-half add produces
/// (l0+l2, l1+l3) per accumulator and the final add sums those two —
/// the same (l0+l2)+(l1+l3) association, ~3x fewer shuffle ops than
/// four scalar reductions, and the result is ready for one vsqrtpd.
inline __m256d reduce_lanes_x4(__m256d a, __m256d b, __m256d c,
                               __m256d d) {
  const __m256d sab =
      _mm256_add_pd(_mm256_permute2f128_pd(a, b, 0x20),
                    _mm256_permute2f128_pd(a, b, 0x31));
  // sab = [a0+a2, a1+a3, b0+b2, b1+b3]; likewise scd.
  const __m256d scd =
      _mm256_add_pd(_mm256_permute2f128_pd(c, d, 0x20),
                    _mm256_permute2f128_pd(c, d, 0x31));
  const __m256d even = _mm256_unpacklo_pd(sab, scd);
  const __m256d odd = _mm256_unpackhi_pd(sab, scd);
  const __m256d v = _mm256_add_pd(even, odd);  // [r(a), r(c), r(b), r(d)]
  return _mm256_permute4x64_pd(v, _MM_SHUFFLE(3, 1, 2, 0));
}

/// Transposed reduction of 2 accumulators into [r(a), r(b)] (same
/// per-lane bits as reduce_lanes; IEEE addition is commutative for the
/// finite values these kernels produce, so the hadd operand order is
/// immaterial).
inline __m128d reduce_lanes_x2(__m256d a, __m256d b) {
  const __m256d s =
      _mm256_add_pd(_mm256_permute2f128_pd(a, b, 0x20),
                    _mm256_permute2f128_pd(a, b, 0x31));
  // s = [a0+a2, a1+a3, b0+b2, b1+b3]
  const __m256d h = _mm256_hadd_pd(s, s);  // [r(a), r(a), r(b), r(b)]
  return _mm256_castpd256_pd128(
      _mm256_permute4x64_pd(h, _MM_SHUFFLE(0, 0, 2, 0)));
}

}  // namespace dipdc::kernels::detail

#endif  // __AVX2__
