// The canonical floating-point accumulation scheme every kernel path —
// scalar, AVX2, and the cachesim-traced reference loops in the modules —
// must reproduce **bit-for-bit**.
//
// An AVX2 vector of doubles has 4 lanes, so the canonical order for any
// length-`dim` reduction is:
//
//   1. walk d in blocks of 4, keeping 4 independent lane accumulators
//      l0..l3 (lane j accumulates dimensions d ≡ j mod 4 of the blocked
//      prefix);
//   2. reduce the lanes as (l0 + l2) + (l1 + l3) — exactly what the
//      extract-high/add/horizontal-add sequence in the AVX2 TUs computes;
//   3. fold the `dim % 4` tail dimensions in sequentially.
//
// Each step is one IEEE multiply then one IEEE add (never a fused
// multiply-add: the kernel TUs are compiled with -ffp-contract=off, and
// the AVX2 paths use explicit mul/add intrinsics).  Two consequences:
//
//   * scalar and SIMD kernels return identical bits for every input, so
//     forcing `--kernel=scalar` can never change a checksum; and
//   * the result intentionally differs from a naive sequential
//     `for (d) acc += diff*diff` loop — the traced module-2 kernels call
//     these helpers instead of open-coding the loop so the traced and
//     fast paths agree too.
//
// These helpers are the *reference* implementation: header-inline,
// portable, and deliberately simple.  The dispatched kernels in
// kernels/*.cpp are the fast versions that must match them.
#pragma once

#include <cstddef>

namespace dipdc::kernels::detail {

/// Number of double lanes in the vector ISA the contract is built around.
inline constexpr std::size_t kLanes = 4;

/// Canonical squared Euclidean distance ‖a − b‖² over `dim` dimensions.
inline double squared_distance_ref(const double* a, const double* b,
                                   std::size_t dim) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t d = 0;
  for (; d + kLanes <= dim; d += kLanes) {
    const double d0 = a[d] - b[d];
    const double d1 = a[d + 1] - b[d + 1];
    const double d2 = a[d + 2] - b[d + 2];
    const double d3 = a[d + 3] - b[d + 3];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  double acc = (l0 + l2) + (l1 + l3);
  for (; d < dim; ++d) {
    const double diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

/// Canonical histogram bin of `v`: offset into [0, bins) clamped at both
/// ends, truncated toward zero (matching _mm256_cvttpd_epi32).
inline std::size_t histogram_bin_ref(double v, double lo, double bin_width,
                                     std::size_t bins) {
  double offset = (v - lo) / bin_width;
  const double top = static_cast<double>(bins - 1);
  if (!(offset > 0.0)) offset = 0.0;  // also catches NaN
  if (offset > top) offset = top;
  return static_cast<std::size_t>(static_cast<int>(offset));
}

/// Canonical bucket of `v` under ascending `splitters`: the number of
/// splitters <= v (i.e. std::upper_bound's index), evaluated as a linear
/// scan so the SIMD compare-and-count path is the same computation.
inline std::size_t bucket_of_ref(double v, const double* splitters,
                                 std::size_t nsplit) {
  std::size_t bucket = 0;
  for (std::size_t s = 0; s < nsplit; ++s) {
    if (splitters[s] <= v) ++bucket;
  }
  return bucket;
}

}  // namespace dipdc::kernels::detail
