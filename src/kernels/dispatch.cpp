#include "kernels/dispatch.hpp"

#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace dipdc::kernels {

namespace {

bool cpu_has_avx2() {
#if defined(DIPDC_KERNELS_HAVE_AVX2) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// DIPDC_KERNEL environment override, read once.  Empty/unset means no
/// override; "simd" on a host without AVX2 degrades to scalar (the CI
/// matrix exports the variable unconditionally).
Isa auto_isa() {
  static const Isa resolved = [] {
    const char* env = std::getenv("DIPDC_KERNEL");
    if (env != nullptr && *env != '\0') {
      const Policy policy = parse_policy(env);
      if (policy == Policy::kScalar) return Isa::kScalar;
      if (policy == Policy::kSimd) {
        return simd_supported() ? Isa::kSimd : Isa::kScalar;
      }
    }
    return simd_supported() ? Isa::kSimd : Isa::kScalar;
  }();
  return resolved;
}

}  // namespace

bool simd_supported() {
  static const bool supported = cpu_has_avx2();
  return supported;
}

Isa resolve(Policy policy) {
  switch (policy) {
    case Policy::kScalar:
      return Isa::kScalar;
    case Policy::kSimd:
      DIPDC_REQUIRE(simd_supported(),
                    "kernel=simd requested but this build/host has no AVX2");
      return Isa::kSimd;
    case Policy::kAuto:
      break;
  }
  return auto_isa();
}

Policy parse_policy(std::string_view text) {
  if (text == "auto") return Policy::kAuto;
  if (text == "scalar") return Policy::kScalar;
  if (text == "simd") return Policy::kSimd;
  support::throw_precondition_failure(
      "parse_policy", "unknown kernel policy '" + std::string(text) +
                          "' (expected auto|scalar|simd)");
}

const char* isa_name(Isa isa) {
  return isa == Isa::kSimd ? "simd" : "scalar";
}

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kScalar:
      return "scalar";
    case Policy::kSimd:
      return "simd";
    case Policy::kAuto:
      break;
  }
  return "auto";
}

}  // namespace dipdc::kernels
