// Scalar implementations + ISA dispatch for the distance kernels.  This
// TU is compiled with -ffp-contract=off: the canonical mul-then-add
// sequence must not be fused into FMAs the AVX2 path doesn't perform.
#include "kernels/distance.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/detail/canonical.hpp"

namespace dipdc::kernels {

namespace {

void distance_row_scalar(const double* a, const double* pts, std::size_t dim,
                         std::size_t j_begin, std::size_t j_end,
                         double* out_row) {
  for (std::size_t j = j_begin; j < j_end; ++j) {
    out_row[j] = std::sqrt(
        detail::squared_distance_ref(a, pts + j * dim, dim));
  }
}

void distance_rows_scalar(const double* all, std::size_t dim, std::size_t n,
                          std::size_t row_begin, std::size_t row_end,
                          std::size_t tile, double* out) {
  // Same j-tile traversal as the SIMD path; each (i, j) cell is an
  // independent canonical reduction, so traversal order only affects
  // locality, never the bits.
  const std::size_t rows = row_end - row_begin;
  const std::size_t step = tile == 0 ? (n == 0 ? 1 : n) : tile;
  for (std::size_t jt = 0; jt < n; jt += step) {
    const std::size_t jt_end = std::min(n, jt + step);
    for (std::size_t i = 0; i < rows; ++i) {
      distance_row_scalar(all + (row_begin + i) * dim, all, dim, jt, jt_end,
                          out + i * n);
    }
  }
}

}  // namespace

void distance_row(Isa isa, const double* a, const double* pts,
                  std::size_t dim, std::size_t j_begin, std::size_t j_end,
                  double* out_row) {
  if (isa == Isa::kSimd) {
    detail::distance_row_avx2(a, pts, dim, j_begin, j_end, out_row);
  } else {
    distance_row_scalar(a, pts, dim, j_begin, j_end, out_row);
  }
}

void distance_rows(Isa isa, const double* all, std::size_t dim,
                   std::size_t n, std::size_t row_begin, std::size_t row_end,
                   std::size_t tile, double* out) {
  if (isa == Isa::kSimd) {
    detail::distance_rows_avx2(all, dim, n, row_begin, row_end, tile, out);
  } else {
    distance_rows_scalar(all, dim, n, row_begin, row_end, tile, out);
  }
}

double squared_distance(Isa isa, const double* a, const double* b,
                        std::size_t dim) {
  if (isa == Isa::kSimd) return detail::squared_distance_avx2(a, b, dim);
  return detail::squared_distance_ref(a, b, dim);
}

}  // namespace dipdc::kernels
