// AVX2 distance kernels.  Compiled with -mavx2 -ffp-contract=off when
// the toolchain targets x86-64; otherwise the stubs at the bottom keep
// the link whole (dispatch never selects them: simd_supported() is
// false without DIPDC_KERNELS_HAVE_AVX2).
//
// Bit-identity with the scalar path comes from following the canonical
// scheme (kernels/detail/canonical.hpp) exactly: 4-lane blocked
// accumulation with explicit mul/add (no FMA), (l0+l2)+(l1+l3) lane
// reduction, sequential scalar tail for dim % 4.
#include "kernels/distance.hpp"

#if defined(__AVX2__)

#include <algorithm>
#include <cmath>

#include "kernels/detail/avx2.hpp"
#include "kernels/detail/canonical.hpp"

namespace dipdc::kernels::detail {

namespace {

/// Scalar tail for dimensions [d0, dim) of one (a, b) pair, appended to
/// the lane-reduced partial `acc` in canonical order.
inline double tail_sq(double acc, const double* a, const double* b,
                      std::size_t d0, std::size_t dim) {
  for (std::size_t d = d0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

/// 1-row x 4-point micro-kernel: the query row's chunk is loaded once
/// and reused against 4 partner points.  Writes *squared* distances.
inline void row_x4(const double* a, const double* b0, const double* b1,
                   const double* b2, const double* b3, std::size_t dim,
                   double out[4]) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t d = 0;
  for (; d + kLanes <= dim; d += kLanes) {
    const __m256d av = _mm256_loadu_pd(a + d);
    acc0 = accumulate_sq_diff(acc0, av, _mm256_loadu_pd(b0 + d));
    acc1 = accumulate_sq_diff(acc1, av, _mm256_loadu_pd(b1 + d));
    acc2 = accumulate_sq_diff(acc2, av, _mm256_loadu_pd(b2 + d));
    acc3 = accumulate_sq_diff(acc3, av, _mm256_loadu_pd(b3 + d));
  }
  _mm256_storeu_pd(out, reduce_lanes_x4(acc0, acc1, acc2, acc3));
  if (d < dim) {
    out[0] = tail_sq(out[0], a, b0, d, dim);
    out[1] = tail_sq(out[1], a, b1, d, dim);
    out[2] = tail_sq(out[2], a, b2, d, dim);
    out[3] = tail_sq(out[3], a, b3, d, dim);
  }
}

/// 4-row x 2-point micro-kernel: 8 accumulators + 6 live operands fill
/// the 16 ymm registers; every loaded chunk feeds 2 or 4 of the 8
/// (row, point) pairs.  Writes *squared* distances: o<r>[0..1] for row r.
inline void rows4_x2(const double* a0, const double* a1, const double* a2,
                     const double* a3, const double* b0, const double* b1,
                     std::size_t dim, double* o0, double* o1, double* o2,
                     double* o3) {
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
  __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
  std::size_t d = 0;
  for (; d + kLanes <= dim; d += kLanes) {
    const __m256d bv0 = _mm256_loadu_pd(b0 + d);
    const __m256d bv1 = _mm256_loadu_pd(b1 + d);
    __m256d av = _mm256_loadu_pd(a0 + d);
    acc00 = accumulate_sq_diff(acc00, av, bv0);
    acc01 = accumulate_sq_diff(acc01, av, bv1);
    av = _mm256_loadu_pd(a1 + d);
    acc10 = accumulate_sq_diff(acc10, av, bv0);
    acc11 = accumulate_sq_diff(acc11, av, bv1);
    av = _mm256_loadu_pd(a2 + d);
    acc20 = accumulate_sq_diff(acc20, av, bv0);
    acc21 = accumulate_sq_diff(acc21, av, bv1);
    av = _mm256_loadu_pd(a3 + d);
    acc30 = accumulate_sq_diff(acc30, av, bv0);
    acc31 = accumulate_sq_diff(acc31, av, bv1);
  }
  _mm_storeu_pd(o0, reduce_lanes_x2(acc00, acc01));
  _mm_storeu_pd(o1, reduce_lanes_x2(acc10, acc11));
  _mm_storeu_pd(o2, reduce_lanes_x2(acc20, acc21));
  _mm_storeu_pd(o3, reduce_lanes_x2(acc30, acc31));
  if (d < dim) {
    o0[0] = tail_sq(o0[0], a0, b0, d, dim);
    o0[1] = tail_sq(o0[1], a0, b1, d, dim);
    o1[0] = tail_sq(o1[0], a1, b0, d, dim);
    o1[1] = tail_sq(o1[1], a1, b1, d, dim);
    o2[0] = tail_sq(o2[0], a2, b0, d, dim);
    o2[1] = tail_sq(o2[1], a2, b1, d, dim);
    o3[0] = tail_sq(o3[0], a3, b0, d, dim);
    o3[1] = tail_sq(o3[1], a3, b1, d, dim);
  }
}

/// In-place sqrt sweep over a contiguous range.  vsqrtpd and sqrtsd are
/// both correctly rounded, so batching the roots after the distance pass
/// is bit-identical to the scalar path's per-pair std::sqrt — and takes
/// the (expensive) root off the micro-kernel's critical path.
inline void sqrt_span(double* p, std::size_t count) {
  std::size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    _mm256_storeu_pd(p + i, _mm256_sqrt_pd(_mm256_loadu_pd(p + i)));
  }
  for (; i < count; ++i) p[i] = std::sqrt(p[i]);
}

}  // namespace

double squared_distance_avx2(const double* a, const double* b,
                             std::size_t dim) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t d = 0;
  for (; d + kLanes <= dim; d += kLanes) {
    acc = accumulate_sq_diff(acc, _mm256_loadu_pd(a + d),
                             _mm256_loadu_pd(b + d));
  }
  return tail_sq(reduce_lanes(acc), a, b, d, dim);
}

void distance_row_avx2(const double* a, const double* pts, std::size_t dim,
                       std::size_t j_begin, std::size_t j_end,
                       double* out_row) {
  // Empty (or inverted) ranges are a no-op — module 2's symmetric path
  // issues them for rows below the current tile.
  if (j_begin >= j_end) return;
  std::size_t j = j_begin;
  for (; j + 4 <= j_end; j += 4) {
    row_x4(a, pts + j * dim, pts + (j + 1) * dim, pts + (j + 2) * dim,
           pts + (j + 3) * dim, dim, out_row + j);
  }
  for (; j < j_end; ++j) {
    out_row[j] = squared_distance_avx2(a, pts + j * dim, dim);
  }
  sqrt_span(out_row + j_begin, j_end - j_begin);
}

void distance_rows_avx2(const double* all, std::size_t dim, std::size_t n,
                        std::size_t row_begin, std::size_t row_end,
                        std::size_t tile, double* out) {
  const std::size_t rows = row_end - row_begin;
  const std::size_t step = tile == 0 ? (n == 0 ? 1 : n) : tile;
  for (std::size_t jt = 0; jt < n; jt += step) {
    const std::size_t jt_end = std::min(n, jt + step);
    std::size_t i = 0;
    for (; i + 4 <= rows; i += 4) {
      const double* a0 = all + (row_begin + i) * dim;
      const double* a1 = a0 + dim;
      const double* a2 = a1 + dim;
      const double* a3 = a2 + dim;
      double* o0 = out + i * n;
      double* o1 = o0 + n;
      double* o2 = o1 + n;
      double* o3 = o2 + n;
      std::size_t j = jt;
      for (; j + 2 <= jt_end; j += 2) {
        rows4_x2(a0, a1, a2, a3, all + j * dim, all + (j + 1) * dim, dim,
                 o0 + j, o1 + j, o2 + j, o3 + j);
      }
      for (; j < jt_end; ++j) {
        const double* b = all + j * dim;
        o0[j] = squared_distance_avx2(a0, b, dim);
        o1[j] = squared_distance_avx2(a1, b, dim);
        o2[j] = squared_distance_avx2(a2, b, dim);
        o3[j] = squared_distance_avx2(a3, b, dim);
      }
      // Batched roots while the tile segments are still cache-hot.
      sqrt_span(o0 + jt, jt_end - jt);
      sqrt_span(o1 + jt, jt_end - jt);
      sqrt_span(o2 + jt, jt_end - jt);
      sqrt_span(o3 + jt, jt_end - jt);
    }
    for (; i < rows; ++i) {
      distance_row_avx2(all + (row_begin + i) * dim, all, dim, jt, jt_end,
                        out + i * n);
    }
  }
}

}  // namespace dipdc::kernels::detail

#else  // !__AVX2__ — never-dispatched stubs so the library always links.

#include <cstdlib>

namespace dipdc::kernels::detail {

double squared_distance_avx2(const double*, const double*, std::size_t) {
  std::abort();
}
void distance_row_avx2(const double*, const double*, std::size_t,
                       std::size_t, std::size_t, double*) {
  std::abort();
}
void distance_rows_avx2(const double*, std::size_t, std::size_t,
                        std::size_t, std::size_t, std::size_t, double*) {
  std::abort();
}

}  // namespace dipdc::kernels::detail

#endif  // __AVX2__
