// AVX2 point-in-rect filter: 4 points per iteration, four ordered
// compares ANDed into one mask, popcount of the movmsk bits.  _CMP_GE_OQ
// / _CMP_LE_OQ return false for NaN operands exactly as the scalar
// `>=` / `<=` do, so NaN coordinates and NaN window bounds produce the
// same (non-)matches as the scalar reference — counts are bit-identical
// for every input, including boundary-inclusive points and degenerate
// (min > max) windows.
#include "kernels/filter.hpp"

#if defined(__AVX2__)

#include "kernels/detail/avx2.hpp"

namespace dipdc::kernels::detail {

std::uint64_t count_in_rect_avx2(const double* xs, const double* ys,
                                 std::size_t n, double xmin, double ymin,
                                 double xmax, double ymax) {
  const __m256d vxmin = _mm256_set1_pd(xmin);
  const __m256d vymin = _mm256_set1_pd(ymin);
  const __m256d vxmax = _mm256_set1_pd(xmax);
  const __m256d vymax = _mm256_set1_pd(ymax);
  std::uint64_t matches = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    const __m256d y = _mm256_loadu_pd(ys + i);
    const __m256d in_x =
        _mm256_and_pd(_mm256_cmp_pd(x, vxmin, _CMP_GE_OQ),
                      _mm256_cmp_pd(x, vxmax, _CMP_LE_OQ));
    const __m256d in_y =
        _mm256_and_pd(_mm256_cmp_pd(y, vymin, _CMP_GE_OQ),
                      _mm256_cmp_pd(y, vymax, _CMP_LE_OQ));
    const int mask = _mm256_movemask_pd(_mm256_and_pd(in_x, in_y));
    matches += static_cast<std::uint64_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) {
    matches += in_rect_ref(xs[i], ys[i], xmin, ymin, xmax, ymax) ? 1u : 0u;
  }
  return matches;
}

}  // namespace dipdc::kernels::detail

#else  // !__AVX2__

#include <cstdlib>

namespace dipdc::kernels::detail {

std::uint64_t count_in_rect_avx2(const double*, const double*, std::size_t,
                                 double, double, double, double) {
  std::abort();
}

}  // namespace dipdc::kernels::detail

#endif  // __AVX2__
