// AVX2 k-means kernels: centroid-blocked assignment (4 centroids' lane
// accumulators live in registers while the point streams through once)
// and vectorized centroid updates.  Same canonical accumulation contract
// as the scalar path; see distance_avx2.cpp for the TU conventions.
#include "kernels/kmeans.hpp"

#if defined(__AVX2__)

#include <algorithm>
#include <limits>

#include "kernels/detail/avx2.hpp"
#include "kernels/detail/canonical.hpp"

namespace dipdc::kernels::detail {

namespace {

/// Canonical ‖p − c‖² for one centroid (vector body + sequential tail).
inline double sq_to_centroid(const double* pt, const double* cent,
                             std::size_t dim) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t d = 0;
  for (; d + kLanes <= dim; d += kLanes) {
    acc = accumulate_sq_diff(acc, _mm256_loadu_pd(pt + d),
                             _mm256_loadu_pd(cent + d));
  }
  double sq = reduce_lanes(acc);
  for (; d < dim; ++d) {
    const double diff = pt[d] - cent[d];
    sq += diff * diff;
  }
  return sq;
}

/// ‖p − c‖² for a block of 4 centroids: the point chunk is loaded once
/// per kLanes dimensions and reused across all 4 accumulator chains.
inline void sq_to_4centroids(const double* pt, const double* c0,
                             const double* c1, const double* c2,
                             const double* c3, std::size_t dim,
                             double out[4]) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t d = 0;
  for (; d + kLanes <= dim; d += kLanes) {
    const __m256d pv = _mm256_loadu_pd(pt + d);
    acc0 = accumulate_sq_diff(acc0, pv, _mm256_loadu_pd(c0 + d));
    acc1 = accumulate_sq_diff(acc1, pv, _mm256_loadu_pd(c1 + d));
    acc2 = accumulate_sq_diff(acc2, pv, _mm256_loadu_pd(c2 + d));
    acc3 = accumulate_sq_diff(acc3, pv, _mm256_loadu_pd(c3 + d));
  }
  _mm256_storeu_pd(out, reduce_lanes_x4(acc0, acc1, acc2, acc3));
  for (; d < dim; ++d) {
    const double pd = pt[d];
    double diff = pd - c0[d];
    out[0] += diff * diff;
    diff = pd - c1[d];
    out[1] += diff * diff;
    diff = pd - c2[d];
    out[2] += diff * diff;
    diff = pd - c3[d];
    out[3] += diff * diff;
  }
}

/// sum_row += pt, element-wise (order-free: bit-identical to scalar).
inline void add_into(double* sum_row, const double* pt, std::size_t dim) {
  std::size_t d = 0;
  for (; d + kLanes <= dim; d += kLanes) {
    _mm256_storeu_pd(sum_row + d,
                     _mm256_add_pd(_mm256_loadu_pd(sum_row + d),
                                   _mm256_loadu_pd(pt + d)));
  }
  for (; d < dim; ++d) sum_row[d] += pt[d];
}

}  // namespace

void assign_points_avx2(const double* points, std::size_t n,
                        std::size_t dim, const double* centroids,
                        std::size_t k, std::size_t* assignment, double* sums,
                        double* counts) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* pt = points + i * dim;
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
      double sq[4];
      const double* cc = centroids + c * dim;
      sq_to_4centroids(pt, cc, cc + dim, cc + 2 * dim, cc + 3 * dim, dim,
                       sq);
      // Strict '<' in ascending centroid order: ties keep the lowest
      // index, exactly like the scalar loop.
      for (std::size_t q = 0; q < 4; ++q) {
        if (sq[q] < best_d) {
          best_d = sq[q];
          best = c + q;
        }
      }
    }
    for (; c < k; ++c) {
      const double sq = sq_to_centroid(pt, centroids + c * dim, dim);
      if (sq < best_d) {
        best_d = sq;
        best = c;
      }
    }
    assignment[i] = best;
    if (sums != nullptr) {
      add_into(sums + best * dim, pt, dim);
      counts[best] += 1.0;
    }
  }
}

double update_centroids_avx2(double* centroids, const double* sums,
                             const double* counts, std::size_t k,
                             std::size_t dim) {
  double movement = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] <= 0.0) continue;
    const __m256d cnt = _mm256_set1_pd(counts[c]);
    const double* sum_row = sums + c * dim;
    double* cent = centroids + c * dim;
    __m256d acc = _mm256_setzero_pd();
    std::size_t d = 0;
    for (; d + kLanes <= dim; d += kLanes) {
      const __m256d next = _mm256_div_pd(_mm256_loadu_pd(sum_row + d), cnt);
      acc = accumulate_sq_diff(acc, next, _mm256_loadu_pd(cent + d));
      _mm256_storeu_pd(cent + d, next);
    }
    double d2sum = reduce_lanes(acc);
    for (; d < dim; ++d) {
      const double next = sum_row[d] / counts[c];
      const double diff = next - cent[d];
      d2sum += diff * diff;
      cent[d] = next;
    }
    movement = std::max(movement, d2sum);
  }
  return movement;
}

}  // namespace dipdc::kernels::detail

#else  // !__AVX2__

#include <cstdlib>

namespace dipdc::kernels::detail {

void assign_points_avx2(const double*, std::size_t, std::size_t,
                        const double*, std::size_t, std::size_t*, double*,
                        double*) {
  std::abort();
}
double update_centroids_avx2(double*, const double*, const double*,
                             std::size_t, std::size_t) {
  std::abort();
}

}  // namespace dipdc::kernels::detail

#endif  // __AVX2__
