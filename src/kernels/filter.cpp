// Scalar implementation + ISA dispatch for the point-in-rect filter.
// Counting is pure integer accumulation, so there is no floating-point
// association to canonicalize — the contract is just "the same four
// ordered comparisons per point" (see filter.hpp).
#include "kernels/filter.hpp"

namespace dipdc::kernels {

std::uint64_t count_in_rect(Isa isa, const double* xs, const double* ys,
                            std::size_t n, double xmin, double ymin,
                            double xmax, double ymax) {
  if (isa == Isa::kSimd) {
    return detail::count_in_rect_avx2(xs, ys, n, xmin, ymin, xmax, ymax);
  }
  std::uint64_t matches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    matches += detail::in_rect_ref(xs[i], ys[i], xmin, ymin, xmax, ymax)
                   ? 1u
                   : 0u;
  }
  return matches;
}

}  // namespace dipdc::kernels
