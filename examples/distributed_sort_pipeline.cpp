// Module 3's three activities as one pipeline: sort uniform data with
// equal-width buckets, watch exponential data break the balance, and fix
// it with histogram-derived splitters.
#include <cstdio>
#include <vector>

#include "minimpi/runtime.hpp"
#include "modules/sort/module3.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m3 = dipdc::modules::distsort;
using namespace dipdc::support;

namespace {

std::vector<double> make_local(int rank, bool exponential, std::size_t n) {
  auto rng = make_stream(exponential ? 11 : 10,
                         static_cast<std::uint64_t>(rank));
  std::vector<double> v(n);
  for (auto& x : v) {
    x = exponential ? std::min(rng.exponential(1.0), 9.999)
                    : rng.uniform(0.0, 10.0);
  }
  return v;
}

}  // namespace

int main() {
  const int ranks = 8;
  const std::size_t per_rank = 100000;
  std::printf("Distributed bucket sort: %d ranks x %zu elements\n\n", ranks,
              per_rank);

  struct Activity {
    const char* name;
    bool exponential;
    m3::SplitterPolicy policy;
  };
  const Activity activities[] = {
      {"1: uniform data, equal-width buckets", false,
       m3::SplitterPolicy::kEqualWidth},
      {"2: exponential data, equal-width buckets", true,
       m3::SplitterPolicy::kEqualWidth},
      {"3: exponential data, histogram splitters", true,
       m3::SplitterPolicy::kHistogram},
  };

  Table t;
  t.set_header({"activity", "sorted?", "imbalance (max/avg)", "sim time",
                "exchange", "local sort"});
  t.set_alignment({Align::kLeft});
  for (const Activity& a : activities) {
    m3::Result r;
    mpi::run(ranks, [&](mpi::Comm& comm) {
      auto local = make_local(comm.rank(), a.exponential, per_rank);
      m3::Config cfg;
      cfg.policy = a.policy;
      cfg.lo = 0.0;
      cfg.hi = 10.0;
      const auto res = m3::distributed_bucket_sort(comm, local, cfg);
      if (comm.rank() == 0) r = res;
    });
    t.add_row({a.name, r.globally_sorted ? "yes" : "NO",
               fixed(r.imbalance, 2), seconds(r.sim_time),
               seconds(r.exchange_time), seconds(r.sort_time)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Lesson (Module 3): skewed data overloads the ranks owning the dense\n"
      "key range; histogram-based splitters restore activity-1 behaviour.\n");
  return 0;
}
