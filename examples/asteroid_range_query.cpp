// The paper's own motivating example for Module 4 (§III-E):
//
//   "Return all asteroids with a light curve amplitude between 0.2-1.0
//    and a rotation period between 30-100 hours."
//
// We synthesize an asteroid catalogue (light-curve amplitude in magnitudes
// vs. rotation period in hours, with the long-period tail real surveys
// show), run the paper's query plus a batch of survey queries with the
// brute-force scan and the R-tree, and print the efficiency/scalability
// trade-off the module teaches.
#include <cstdio>
#include <vector>

#include "index/geometry.hpp"
#include "index/rtree.hpp"
#include "minimpi/runtime.hpp"
#include "modules/rangequery/module4.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m4 = dipdc::modules::rangequery;
namespace sp = dipdc::spatial;
using namespace dipdc::support;

namespace {

/// Synthetic asteroid catalogue: x = rotation period (hours, log-normal-ish
/// with a long tail), y = light-curve amplitude (mag, exponential-ish).
std::vector<sp::Point2> make_catalogue(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<sp::Point2> asteroids(n);
  for (auto& a : asteroids) {
    a.x = std::min(1000.0, std::exp(rng.normal(1.8, 1.1)));  // period
    a.y = std::min(2.5, rng.exponential(3.0));               // amplitude
  }
  return asteroids;
}

}  // namespace

int main() {
  const std::size_t n = 200000;
  const auto catalogue = make_catalogue(n, 2021);

  std::printf("Asteroid catalogue: %zu objects "
              "(rotation period [h] x light-curve amplitude [mag])\n\n",
              n);

  // --- The paper's example query, answered three ways. ---
  const sp::Rect paper_query{30.0, 0.2, 100.0, 1.0};
  std::vector<std::uint32_t> hits;
  sp::QueryStats brute_stats, rtree_stats;
  sp::brute_force_query(catalogue, paper_query, hits, &brute_stats);
  const std::size_t matches = hits.size();
  hits.clear();
  const sp::RTree tree = sp::RTree::bulk_load(catalogue, 16);
  tree.query(paper_query, hits, &rtree_stats);

  std::printf("Query: amplitude 0.2-1.0 mag AND period 30-100 h\n");
  Table t("  (entries checked = point/rectangle comparisons performed)");
  t.set_header({"engine", "matches", "entries checked", "nodes visited"});
  t.set_alignment({Align::kLeft});
  t.add_row({"brute-force scan", std::to_string(matches),
             std::to_string(brute_stats.entries_checked), "0"});
  t.add_row({"R-tree", std::to_string(hits.size()),
             std::to_string(rtree_stats.entries_checked),
             std::to_string(rtree_stats.nodes_visited)});
  std::printf("%s\n", t.render().c_str());

  // --- A survey workload, distributed over MPI ranks. ---
  const auto queries = m4::make_query_workload(512, 200.0, 15.0, 77);
  std::printf("Survey workload: %zu box queries over 8 ranks\n",
              queries.size());
  Table s;
  s.set_header({"engine", "total matches", "sim time", "speedup vs brute"});
  s.set_alignment({Align::kLeft});
  double t_brute = 0.0;
  for (const auto engine :
       {m4::Engine::kBruteForce, m4::Engine::kRTree, m4::Engine::kQuadTree}) {
    m4::Config cfg;
    cfg.engine = engine;
    m4::Result r;
    mpi::run(8, [&](mpi::Comm& comm) {
      r = m4::run_distributed(comm, catalogue, queries, cfg);
    });
    if (engine == m4::Engine::kBruteForce) t_brute = r.sim_time;
    const char* name = engine == m4::Engine::kBruteForce ? "brute force"
                       : engine == m4::Engine::kRTree    ? "R-tree"
                                                         : "quad-tree";
    s.add_row({name, std::to_string(r.total_matches),
               seconds(r.sim_time), fixed(t_brute / r.sim_time, 1) + "x"});
  }
  std::printf("%s\n", s.render().c_str());
  std::printf("Lesson (Module 4): the index is far more *efficient*, even\n"
              "though the brute-force scan is more *scalable* — see\n"
              "bench_module4 for the full scaling experiment.\n");
  return 0;
}
