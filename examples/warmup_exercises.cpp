// The ancillary warm-up exercises as a runnable in-class session.
#include <cstdio>

#include "minimpi/runtime.hpp"
#include "modules/warmup/warmup.hpp"

namespace mpi = dipdc::minimpi;
namespace wu = dipdc::modules::warmup;

int main() {
  std::printf("MPI warm-up exercises (ancillary module), 8 ranks:\n\n");
  mpi::run(8, [](mpi::Comm& comm) {
    const auto reports = wu::run_all(comm);
    if (comm.rank() == 0) {
      for (const auto& r : reports) {
        std::printf("  [%s] %-16s %s\n", r.passed ? "PASS" : "FAIL",
                    r.name.c_str(), r.detail.c_str());
      }
    }
  });
  std::printf("\n(each exercise checks itself — see "
              "src/modules/warmup/warmup.hpp)\n");
  return 0;
}
