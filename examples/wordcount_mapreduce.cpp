// Hand-built MapReduce word count over Zipf-distributed "text" — the
// Module 7 extension as a runnable demo.
#include <cstdio>
#include <string>

#include "dataio/dataset.hpp"
#include "minimpi/runtime.hpp"
#include "modules/mapreduce/module7.hpp"
#include "support/ascii_chart.hpp"
#include "support/format.hpp"

namespace mpi = dipdc::minimpi;
namespace m7 = dipdc::modules::mapreduce;
namespace io = dipdc::dataio;
using namespace dipdc::support;

int main() {
  const std::size_t n = 500000;
  const std::uint64_t vocab = 10000;
  const auto tokens = io::generate_zipf_tokens(n, vocab, 1.07, 99);

  std::printf("Word count over %zu Zipf tokens, vocabulary %llu, 8 ranks\n\n",
              n, static_cast<unsigned long long>(vocab));

  m7::Config cfg;
  cfg.vocabulary = vocab;

  std::vector<m7::KeyCount> top;
  std::uint64_t total = 0;
  mpi::run(8, [&](mpi::Comm& comm) {
    const auto parts =
        io::block_partition(tokens.size(), static_cast<std::size_t>(comm.size()));
    const auto [b, e] = parts[static_cast<std::size_t>(comm.rank())];
    const std::span<const std::uint64_t> mine{tokens.data() + b, e - b};
    const auto r = m7::word_count(comm, mine, cfg);

    // Ship every rank's top counts to rank 0 for display.
    std::vector<m7::KeyCount> local_top(r.counts.begin(), r.counts.end());
    std::sort(local_top.begin(), local_top.end(),
              [](const m7::KeyCount& a, const m7::KeyCount& c) {
                return a.count > c.count;
              });
    local_top.resize(std::min<std::size_t>(local_top.size(), 10));
    if (comm.rank() == 0) {
      top = local_top;
      for (int src = 1; src < comm.size(); ++src) {
        const auto theirs = comm.recv_vector<m7::KeyCount>(src, 70);
        top.insert(top.end(), theirs.begin(), theirs.end());
      }
      std::sort(top.begin(), top.end(),
                [](const m7::KeyCount& a, const m7::KeyCount& c) {
                  return a.count > c.count;
                });
      total = r.global_total;
    } else {
      comm.send(std::span<const m7::KeyCount>(local_top), 0, 70);
    }
  });

  std::printf("total tokens counted: %llu\n\nTop words (Zipf in action):\n",
              static_cast<unsigned long long>(total));
  std::vector<Bar> bars;
  for (std::size_t i = 0; i < 12 && i < top.size(); ++i) {
    bars.push_back({"word#" + std::to_string(top[i].key),
                    static_cast<double>(top[i].count), '#'});
  }
  std::printf("%s", bar_chart(bars, 0.0, 48).c_str());
  std::printf("\n(the head of the distribution towers over the tail — why "
              "combiners and hash\n partitioning matter; see "
              "bench_module7)\n");
  return 0;
}
