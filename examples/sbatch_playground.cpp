// The ancillary SLURM module as a playground: parse real-looking #SBATCH
// scripts, submit them to the simulated cluster under FIFO and backfill,
// and watch co-scheduling interference.
#include <cstdio>
#include <vector>

#include "slurmsim/slurmsim.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace sl = dipdc::slurmsim;
using namespace dipdc::support;

int main() {
  const char* scripts[] = {
      R"(#!/bin/bash
#SBATCH --job-name=distmatrix --nodes=2 --ntasks-per-node=32
#SBATCH --time=00:02:00 --exclusive
#DIPDC work=100 bw-demand=0.3
srun ./distance_matrix
)",
      R"(#!/bin/bash
#SBATCH --job-name=bucketsort -N 1
#SBATCH --ntasks-per-node=16 --time=00:01:00
#DIPDC work=55 bw-demand=0.8
srun ./distribution_sort
)",
      R"(#!/bin/bash
#SBATCH --job-name=rangequery -N 1 --ntasks-per-node=16
#SBATCH --time=00:00:40
#DIPDC work=35 bw-demand=0.8
srun ./range_query
)",
      R"(#!/bin/bash
#SBATCH --job-name=kmeans -N 1 --ntasks-per-node=16
#SBATCH --time=00:00:30
#DIPDC work=25 bw-demand=0.1
srun ./kmeans
)",
  };

  std::vector<sl::JobSpec> jobs;
  double submit = 0.0;
  for (const char* s : scripts) {
    auto j = sl::parse_sbatch(s);
    j.submit_time = submit;
    submit += 1.0;
    jobs.push_back(j);
  }

  const sl::ClusterSpec cluster{2, 32};
  for (const auto policy : {sl::Policy::kFifo, sl::Policy::kBackfill}) {
    const auto result = sl::simulate(cluster, policy, jobs);
    std::printf("== %s on a %d-node x %d-core cluster ==\n",
                policy == sl::Policy::kFifo ? "FIFO" : "EASY backfill",
                cluster.nodes, cluster.cores_per_node);
    Table t;
    t.set_header({"job", "nodes", "start", "finish", "wait", "slowdown"});
    t.set_alignment({Align::kLeft});
    for (const auto& j : result.jobs) {
      t.add_row({j.spec.name, std::to_string(j.spec.nodes),
                 fixed(j.start_time, 1), fixed(j.finish_time, 1),
                 fixed(j.wait_time(), 1), fixed(j.slowdown(), 2) + "x"});
    }
    t.add_rule();
    t.add_row({"makespan", "", "", fixed(result.makespan, 1), "",
               "util " + percent(result.utilization(cluster), 1)});
    std::printf("%s\n", t.render().c_str());
  }
  std::printf(
      "Note the slowdown column: when two bandwidth-hungry jobs\n"
      "(bw-demand 0.8) share a node, both dilate — the 'terrible twins'\n"
      "problem behind the paper's Figure 1 quiz question.  Pairing a\n"
      "memory-bound job with a compute-bound one (kmeans, bw 0.1) is\n"
      "free.\n");
  return 0;
}
