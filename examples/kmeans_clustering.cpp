// Distributed k-means on a 2-D dataset, with the ASCII visualization that
// made Module 5 the students' favourite ("it was satisfying to see the
// data cluster correctly" — paper §IV-D).
#include <cstdio>
#include <string>
#include <vector>

#include "dataio/dataset.hpp"
#include "minimpi/runtime.hpp"
#include "modules/kmeans/module5.hpp"
#include "support/format.hpp"

namespace mpi = dipdc::minimpi;
namespace m5 = dipdc::modules::kmeans;
namespace io = dipdc::dataio;
using namespace dipdc::support;

namespace {

/// Renders points as a character grid; each point is drawn with the glyph
/// of its nearest centroid, centroids themselves as '#'.
void draw(const io::Dataset& data, const std::vector<double>& centroids,
          std::size_t k, int width, int height) {
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (std::size_t i = 0; i < data.size(); ++i) {
    xmin = std::min(xmin, data.point(i)[0]);
    xmax = std::max(xmax, data.point(i)[0]);
    ymin = std::min(ymin, data.point(i)[1]);
    ymax = std::max(ymax, data.point(i)[1]);
  }
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  auto cell = [&](double x, double y) {
    const int cx = std::min(width - 1, static_cast<int>((x - xmin) /
                                                        (xmax - xmin) *
                                                        (width - 1)));
    const int cy = std::min(height - 1, static_cast<int>((y - ymin) /
                                                         (ymax - ymin) *
                                                         (height - 1)));
    return std::pair<int, int>{cx, height - 1 - cy};
  };
  const char glyphs[] = "oxv*+.sz";
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double x = data.point(i)[0], y = data.point(i)[1];
    std::size_t best = 0;
    double bd = 1e300;
    for (std::size_t c = 0; c < k; ++c) {
      const double dx = x - centroids[c * 2];
      const double dy = y - centroids[c * 2 + 1];
      if (dx * dx + dy * dy < bd) {
        bd = dx * dx + dy * dy;
        best = c;
      }
    }
    const auto [cx, cy] = cell(x, y);
    grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] =
        glyphs[best % 8];
  }
  for (std::size_t c = 0; c < k; ++c) {
    const auto [cx, cy] = cell(centroids[c * 2], centroids[c * 2 + 1]);
    grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = '#';
  }
  for (const auto& row : grid) std::printf("|%s|\n", row.c_str());
}

}  // namespace

int main() {
  const std::size_t k = 5;
  const auto dataset = io::generate_clusters(4000, 2, k, 2.0, 0.0, 100.0,
                                             424242);
  std::printf("k-means on %zu 2-D points, k=%zu, 4 MPI ranks\n\n",
              dataset.data.size(), k);

  for (const auto strategy :
       {m5::Strategy::kWeightedMeans, m5::Strategy::kExplicitAssignments}) {
    m5::Config cfg;
    cfg.k = k;
    cfg.strategy = strategy;
    m5::Result r;
    mpi::run(4, [&](mpi::Comm& comm) {
      r = m5::distributed(comm, comm.rank() == 0 ? dataset.data
                                                 : io::Dataset{}, cfg);
    });
    std::printf("strategy %-22s: %2d iterations, inertia %.1f, "
                "loop comm volume %s\n",
                strategy == m5::Strategy::kWeightedMeans
                    ? "weighted means"
                    : "explicit assignments",
                r.iterations, r.inertia, bytes(r.comm_bytes).c_str());
    if (strategy == m5::Strategy::kWeightedMeans) {
      std::printf("\nclustered data ('#' = centroid):\n");
      draw(dataset.data, r.centroids, k, 72, 24);
      std::printf("\n");
    }
  }
  std::printf("\nBoth strategies find the same clusters; the weighted-means\n"
              "option communicates O(k*d) per iteration instead of O(N).\n");
  return 0;
}
