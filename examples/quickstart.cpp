// Quickstart: the minimpi runtime in five minutes.
//
// Build & run:  ./build/examples/quickstart
//
// Shows the core of what the pedagogic modules build on: spinning up a
// world of ranks, point-to-point messaging, collectives, simulated time
// under a machine model, and the deadlock detector in action.
#include <cstdio>
#include <numeric>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "support/format.hpp"

namespace mpi = dipdc::minimpi;
using dipdc::support::seconds;

int main() {
  std::printf("== 1. Hello, world: point-to-point ==\n");
  mpi::run(4, [](mpi::Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value(comm.rank() * 100, /*dest=*/0, /*tag=*/1);
    } else {
      for (int i = 1; i < comm.size(); ++i) {
        const mpi::Status st = comm.probe();
        const int v = comm.recv_value<int>(st.source, st.tag);
        std::printf("rank 0 received %d from rank %d\n", v, st.source);
      }
    }
  });

  std::printf("\n== 2. Collectives: scatter, compute, reduce ==\n");
  mpi::run(4, [](mpi::Comm& comm) {
    std::vector<double> all(16);
    if (comm.rank() == 0) std::iota(all.begin(), all.end(), 1.0);
    std::vector<double> mine(4);
    comm.scatter(std::span<const double>(all), std::span<double>(mine), 0);
    double local = 0.0;
    for (const double v : mine) local += v * v;
    double total = 0.0;
    comm.reduce(std::span<const double>(&local, 1),
                std::span<double>(&total, 1), mpi::ops::Sum{}, 0);
    if (comm.rank() == 0) {
      std::printf("sum of squares of 1..16 = %.0f (expect 1496)\n", total);
    }
  });

  std::printf("\n== 3. Simulated time under a machine model ==\n");
  mpi::RuntimeOptions opts;
  opts.machine.nodes = 2;  // ranks 0,1 on node 0; ranks 2,3 on node 1
  const auto result = mpi::run(
      4,
      [](mpi::Comm& comm) {
        comm.sim_compute(/*flops=*/1e9, /*mem_bytes=*/0.0);
        comm.barrier();
      },
      opts);
  std::printf("simulated makespan of 1 Gflop per rank + barrier: %s\n",
              seconds(result.max_sim_time()).c_str());

  std::printf("\n== 4. The deadlock detector (Module 1's lesson) ==\n");
  mpi::RuntimeOptions rendezvous;
  rendezvous.eager_threshold = 0;  // every send blocks until matched
  try {
    mpi::run(
        3,
        [](mpi::Comm& comm) {
          const int next = (comm.rank() + 1) % comm.size();
          const int prev = (comm.rank() - 1 + comm.size()) % comm.size();
          comm.send_value(comm.rank(), next);       // everyone sends first...
          (void)comm.recv_value<int>(prev);         // ...nobody ever receives
        },
        rendezvous);
  } catch (const mpi::DeadlockError& e) {
    std::printf("caught: %s\n", e.what());
  }
  std::printf("\n(fix: use isend/recv/wait, or sendrecv — see Module 1)\n");
  return 0;
}
