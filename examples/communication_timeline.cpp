// The built-in communication tracer: record every operation of a small
// pipeline and draw its timeline — a miniature profiler for the modules'
// "reason about communication patterns" outcomes.
#include <cstdio>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/trace.hpp"

namespace mpi = dipdc::minimpi;

int main() {
  mpi::RuntimeOptions opts;
  opts.record_trace = true;
  opts.machine.nodes = 2;
  opts.machine.inter_latency = 1e-5;

  // A little pipeline: scatter work, compute (skewed), exchange halos in a
  // ring, reduce a result.
  const auto result = mpi::run(
      4,
      [](mpi::Comm& comm) {
        std::vector<double> all(4 * 4096);
        std::vector<double> mine(4096);
        comm.scatter(std::span<const double>(all), std::span<double>(mine),
                     0);
        // Imbalanced compute so the timeline shows waiting.
        comm.sim_compute(1e6 * (comm.rank() + 1), 0.0);
        const int next = (comm.rank() + 1) % comm.size();
        const int prev = (comm.rank() - 1 + comm.size()) % comm.size();
        double out = comm.rank(), in = 0.0;
        comm.sendrecv(std::span<const double>(&out, 1), next, 1,
                      std::span<double>(&in, 1), prev, 1);
        double sum = 0.0;
        comm.reduce(std::span<const double>(&in, 1),
                    std::span<double>(&sum, 1), mpi::ops::Sum{}, 0);
        comm.barrier();
      },
      opts);

  std::printf("Recorded %zu events over %d ranks.\n\n", result.trace.size(),
              4);
  std::printf("%s\n", mpi::render_timeline(result.trace, 4,
                                           result.max_sim_time(), 72)
                          .c_str());
  std::printf("Event log:\n%s", mpi::render_log(result.trace, 30).c_str());
  return 0;
}
