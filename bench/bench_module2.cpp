// Module 2 experiments (paper §III-C): row-wise vs. tiled distance matrix
// on 90-dimensional points, measured cache-miss rates, the tile-size
// trade-off, and compute-bound strong scaling.
#include <algorithm>
#include <cstdio>
#include <string>

#include "dataio/dataset.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/distance.hpp"
#include "minimpi/runtime.hpp"
#include "modules/distmatrix/module2.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m2 = dipdc::modules::distmatrix;
namespace io = dipdc::dataio;
namespace pm = dipdc::perfmodel;
namespace ker = dipdc::kernels;
using namespace dipdc::support;

int main() {
  // The module prescribes 90-dimensional feature vectors.
  const std::size_t dim = 90;

  // --- Tile-size sweep with the cache simulator (the module's
  //     "performance tool"). ---
  {
    const std::size_t n = 1024;
    const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 90);
    std::printf("Row-wise vs. tiled, N=%zu x %zu-D, 256 KiB cache, "
                "4 ranks (cache-simulator traced)\n\n",
                n, dim);
    Table t;
    t.set_header({"kernel", "L1 miss rate", "DRAM traffic/rank",
                  "sim time", "vs row-wise"});
    t.set_alignment({Align::kLeft});
    double t_row = 0.0;
    for (const std::size_t tile : {0u, 8u, 32u, 128u, 320u, 1024u}) {
      m2::Config cfg;
      cfg.tile = tile;
      cfg.trace_cache = true;
      cfg.cache = {256 * 1024, 64, 8};
      mpi::RuntimeOptions opts;
      opts.machine.node_mem_bandwidth = 20e9;  // bandwidth-constrained node
      m2::Result r;
      mpi::run(
          4,
          [&](mpi::Comm& comm) {
            const auto res = m2::run_distributed(
                comm, comm.rank() == 0 ? d : io::Dataset{}, cfg);
            if (comm.rank() == 0) r = res;
          },
          opts);
      if (tile == 0) t_row = r.sim_time;
      const std::string name =
          tile == 0 ? "row-wise" : "tiled T=" + std::to_string(tile);
      t.add_row({name, percent(r.miss_rate),
                 bytes(static_cast<std::uint64_t>(r.dram_bytes)),
                 seconds(r.sim_time), fixed(t_row / r.sim_time, 2) + "x"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("(tile of 320 x 90-D points = 225 KiB: about the cache "
                "size — larger tiles thrash,\n tiny tiles re-stream the "
                "row block per tile: the module's trade-off)\n\n");
  }

  // --- Strong scaling: the compute-bound workload of the curriculum. ---
  {
    const std::size_t n = 2048;
    const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 91);
    std::printf("Strong scaling, N=%zu x %zu-D, tiled T=128, one "
                "32-core node\n\n",
                n, dim);
    Table t;
    t.set_header({"ranks", "sim time", "speedup", "parallel efficiency"});
    std::vector<double> times;
    const std::vector<int> ranks = {1, 2, 4, 8, 16, 32};
    for (const int p : ranks) {
      m2::Config cfg;
      cfg.tile = 128;
      mpi::RuntimeOptions opts;
      opts.machine = pm::MachineConfig::monsoon_like(1);
      double tt = 0.0;
      mpi::run(
          p,
          [&](mpi::Comm& comm) {
            tt = m2::run_distributed(comm,
                                     comm.rank() == 0 ? d : io::Dataset{},
                                     cfg)
                     .sim_time;
          },
          opts);
      times.push_back(tt);
    }
    const auto sp = pm::speedups(times);
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      t.add_row({std::to_string(ranks[i]), seconds(times[i]),
                 fixed(sp[i], 2),
                 percent(pm::parallel_efficiency(
                     sp[i], ranks[i]))});
    }
    std::printf("%s", t.render().c_str());
    std::printf("(compute-bound: efficiency stays high — contrast with "
                "bench_module3's\n memory-bound sort)\n\n");
  }

  // --- Extension (outcome 15): symmetric triangle + row distribution. ---
  {
    const std::size_t n = 1024;
    const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 92);
    std::printf("Extension: exploit d(i,j)=d(j,i) — half the arithmetic, "
                "but watch the balance (16 ranks)\n\n");
    Table t;
    t.set_header({"configuration", "sim time", "compute imbalance",
                  "vs full/block"});
    t.set_alignment({Align::kLeft});
    struct Case {
      const char* name;
      bool symmetric;
      m2::RowDistribution dist;
    };
    double base = 0.0;
    for (const Case& c :
         {Case{"full matrix, block rows", false,
               m2::RowDistribution::kBlock},
          Case{"triangle, block rows", true, m2::RowDistribution::kBlock},
          Case{"triangle, cyclic rows", true,
               m2::RowDistribution::kCyclic}}) {
      m2::Config cfg;
      cfg.symmetric = c.symmetric;
      cfg.distribution = c.dist;
      mpi::RuntimeOptions opts;
      opts.machine = pm::MachineConfig::monsoon_like(1);
      m2::Result r;
      mpi::run(
          16,
          [&](mpi::Comm& comm) {
            const auto res = m2::run_distributed(
                comm, comm.rank() == 0 ? d : io::Dataset{}, cfg);
            if (comm.rank() == 0) r = res;
          },
          opts);
      if (base == 0.0) base = r.sim_time;
      t.add_row({c.name, seconds(r.sim_time),
                 fixed(r.compute_imbalance, 2),
                 fixed(base / r.sim_time, 2) + "x"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("(the triangle halves the work, but block rows leave rank 0 "
                "holding the longest\n rows — cyclic distribution collects "
                "the full ~2x: learning outcome 15)\n\n");
  }

  // --- Native kernel timing: the dispatched scalar vs. SIMD paths that
  //     back the module's untraced compute (wall clock, not simulated).
  {
    const std::size_t n = 2048;
    const std::size_t rows = 64;
    const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 93);
    const double pairs =
        static_cast<double>(rows) * static_cast<double>(n);
    std::printf("Native distance-kernel timing: %zu rows x %zu points x "
                "%zu-D, tile 128 (wall clock)\n\n",
                rows, n, dim);
    Table t;
    t.set_header({"kernel path", "native time", "throughput", "speedup"});
    t.set_alignment({Align::kLeft});
    std::vector<ker::Isa> isas = {ker::Isa::kScalar};
    if (ker::simd_supported()) isas.push_back(ker::Isa::kSimd);
    std::vector<double> out(rows * n);
    double t_scalar = 0.0;
    for (const ker::Isa isa : isas) {
      double best = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        Stopwatch sw;
        ker::distance_rows(isa, d.values().data(), dim, n, 0, rows,
                           /*tile=*/128, out.data());
        best = std::min(best, sw.elapsed());
      }
      if (isa == ker::Isa::kScalar) t_scalar = best;
      t.add_row({ker::isa_name(isa), seconds(best),
                 fixed(pairs / best / 1e6, 1) + "M pairs/s",
                 fixed(t_scalar / best, 2) + "x"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("(same bits either way — the canonical accumulation "
                "contract, see DESIGN.md §12;\n only the wall clock "
                "changes.  bench_kernels has the per-kernel breakdown)\n");
  }
  return 0;
}
