// Throughput of the mpifuzz pipeline (generate -> oracle -> execute ->
// check), in seeds per second — the number that decides how much coverage
// a nightly fuzz budget buys.  Three configurations:
//
//   * fault-free   — pure conformance checking
//   * auto faults  — the nightly default: a random plan drawn per seed
//   * generate-only — generator + oracle without execution, isolating the
//     cost of the real threaded runs
//
// Run with --seeds=N (default 200) and --base-seed=S (default 1).
#include <cstdio>
#include <string>

#include "fuzz/check.hpp"
#include "fuzz/execute.hpp"
#include "fuzz/generate.hpp"
#include "fuzz/oracle.hpp"
#include "support/args.hpp"
#include "support/stopwatch.hpp"

namespace fz = dipdc::fuzz;

namespace {

struct Row {
  const char* name;
  std::string fault_spec;
  bool execute = true;
};

void bench(const Row& row, long seeds, std::uint64_t base) {
  fz::GenConfig cfg;
  cfg.fault_spec = row.fault_spec;
  long ops = 0;
  long failures = 0;
  dipdc::support::Stopwatch timer;
  for (long i = 0; i < seeds; ++i) {
    const fz::Program p = fz::generate(base + static_cast<std::uint64_t>(i),
                                       cfg);
    ops += static_cast<long>(p.op_count());
    const fz::Expectation e = fz::oracle(p);
    if (row.execute) {
      const fz::CheckResult r = fz::check(p, e, fz::execute(p));
      if (!r.ok) ++failures;
    }
  }
  const double secs = timer.elapsed();
  std::printf("%-14s %6ld seeds  %8ld ops  %7.2f s  %8.1f seeds/s  %ld "
              "failures\n",
              row.name, seeds, ops, secs, static_cast<double>(seeds) / secs,
              failures);
}

}  // namespace

int main(int argc, char** argv) {
  dipdc::support::ArgParser args(argc, argv);
  const long seeds = args.get_int("seeds", 200);
  const auto base =
      static_cast<std::uint64_t>(args.get_int("base-seed", 1));

  std::printf("mpifuzz pipeline throughput (%ld seeds per row)\n\n", seeds);
  bench({"fault-free", "", true}, seeds, base);
  bench({"auto-faults", "auto", true}, seeds, base);
  bench({"generate-only", "auto", false}, seeds, base);
  return 0;
}
