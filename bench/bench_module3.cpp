// Module 3 experiments (paper §III-D): distribution sort across the three
// activities (uniform/equal-width, exponential/equal-width,
// exponential/histogram), per-rank load distribution, and memory-bound
// strong scaling.
#include <cstdio>
#include <string>
#include <vector>

#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"
#include "modules/sort/module3.hpp"
#include "perfmodel/machine.hpp"
#include "support/ascii_chart.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m3 = dipdc::modules::distsort;
namespace pm = dipdc::perfmodel;
using namespace dipdc::support;

namespace {

std::vector<double> make_local(int rank, bool exponential, std::size_t n) {
  auto rng = make_stream(exponential ? 21 : 20,
                         static_cast<std::uint64_t>(rank));
  std::vector<double> v(n);
  for (auto& x : v) {
    x = exponential ? std::min(rng.exponential(1.0), 9.999)
                    : rng.uniform(0.0, 10.0);
  }
  return v;
}

}  // namespace

int main() {
  const int ranks = 8;
  const std::size_t per_rank = 200000;

  struct Activity {
    const char* name;
    bool exponential;
    m3::SplitterPolicy policy;
  };
  const Activity activities[] = {
      {"activity 1: uniform, equal-width", false,
       m3::SplitterPolicy::kEqualWidth},
      {"activity 2: exponential, equal-width", true,
       m3::SplitterPolicy::kEqualWidth},
      {"activity 3: exponential, histogram", true,
       m3::SplitterPolicy::kHistogram},
      {"extension: exponential, regular sampling", true,
       m3::SplitterPolicy::kSampling},
  };

  std::printf("Distribution sort: %d ranks x %zu keys in [0, 10)\n\n", ranks,
              per_rank);
  Table t;
  t.set_header({"activity", "imbalance", "sim time", "vs activity 1",
                "exchange volume"});
  t.set_alignment({Align::kLeft});
  double t_uniform = 0.0;
  for (const Activity& a : activities) {
    m3::Result r;
    std::vector<std::size_t> bucket_sizes(ranks);
    mpi::run(ranks, [&](mpi::Comm& comm) {
      auto local = make_local(comm.rank(), a.exponential, per_rank);
      m3::Config cfg;
      cfg.policy = a.policy;
      cfg.lo = 0.0;
      cfg.hi = 10.0;
      const auto res = m3::distributed_bucket_sort(comm, local, cfg);
      const auto mine = static_cast<long long>(res.local_elements);
      std::vector<long long> sizes(static_cast<std::size_t>(comm.size()));
      comm.gather(std::span<const long long>(&mine, 1),
                  std::span<long long>(sizes), 0);
      if (comm.rank() == 0) {
        r = res;
        for (int i = 0; i < comm.size(); ++i) {
          bucket_sizes[static_cast<std::size_t>(i)] =
              static_cast<std::size_t>(sizes[static_cast<std::size_t>(i)]);
        }
      }
    });
    if (a.policy == m3::SplitterPolicy::kEqualWidth && !a.exponential) {
      t_uniform = r.sim_time;
    }
    const std::uint64_t volume =
        r.exchange_bytes * static_cast<std::uint64_t>(ranks);
    t.add_row({a.name, fixed(r.imbalance, 2), seconds(r.sim_time),
               fixed(r.sim_time / t_uniform, 2) + "x", bytes(volume)});

    std::printf("per-rank bucket sizes, %s:\n", a.name);
    std::vector<Bar> bars;
    for (int i = 0; i < ranks; ++i) {
      bars.push_back({"rank " + std::to_string(i),
                      static_cast<double>(
                          bucket_sizes[static_cast<std::size_t>(i)]),
                      '#'});
    }
    std::printf("%s\n", bar_chart(bars, 0.0, 40).c_str());
  }
  std::printf("%s", t.render().c_str());
  std::printf("(shape: activity 2 is slowed by the overloaded first "
              "buckets; activity 3 restores\n activity-1 performance — "
              "paper §III-D)\n\n");

  // --- Strong scaling: sorting is memory-bound, so efficiency drops. ---
  std::printf("Strong scaling, 3.2M uniform keys total, one 32-core "
              "node\n\n");
  Table s;
  s.set_header({"ranks", "sim time", "speedup", "parallel efficiency"});
  std::vector<double> times;
  const std::vector<int> rank_counts = {1, 2, 4, 8, 16, 32};
  const std::size_t total_keys = 3200000;
  for (const int p : rank_counts) {
    double tt = 0.0;
    mpi::RuntimeOptions opts;
    opts.machine = pm::MachineConfig::monsoon_like(1);
    mpi::run(
        p,
        [&](mpi::Comm& comm) {
          auto local = make_local(comm.rank(), false,
                                  total_keys / static_cast<std::size_t>(p));
          m3::Config cfg;
          cfg.lo = 0.0;
          cfg.hi = 10.0;
          const double v =
              m3::distributed_bucket_sort(comm, local, cfg).sim_time;
          if (comm.rank() == 0) tt = v;
        },
        opts);
    times.push_back(tt);
  }
  const auto sp = pm::speedups(times);
  for (std::size_t i = 0; i < rank_counts.size(); ++i) {
    s.add_row({std::to_string(rank_counts[i]), seconds(times[i]),
               fixed(sp[i], 2),
               percent(pm::parallel_efficiency(sp[i], rank_counts[i]))});
  }
  std::printf("%s", s.render().c_str());
  std::printf("(memory-bound: scalability is visibly below Module 2's "
              "compute-bound distance\n matrix — the module's comparative "
              "lesson)\n\n");

  // --- Weak scaling: 400k keys per rank, one 32-core node. ---
  std::printf("Weak scaling, 400k uniform keys PER RANK:\n\n");
  Table w;
  w.set_header({"ranks", "sim time", "weak efficiency"});
  double t1 = 0.0;
  for (const int p : {1, 2, 4, 8, 16, 32}) {
    double tt = 0.0;
    mpi::RuntimeOptions opts;
    opts.machine = pm::MachineConfig::monsoon_like(1);
    mpi::run(
        p,
        [&](mpi::Comm& comm) {
          auto local = make_local(comm.rank(), false, 400000);
          m3::Config cfg;
          cfg.lo = 0.0;
          cfg.hi = 10.0;
          const double v =
              m3::distributed_bucket_sort(comm, local, cfg).sim_time;
          if (comm.rank() == 0) tt = v;
        },
        opts);
    if (p == 1) t1 = tt;
    w.add_row({std::to_string(p), seconds(tt),
               percent(pm::weak_efficiency(t1, tt))});
  }
  std::printf("%s", w.render().c_str());
  std::printf("(weak scaling exposes the shared memory bandwidth even more "
              "starkly: per-rank\n work is constant but per-rank bandwidth "
              "shrinks with every added rank)\n");
  return 0;
}
