// Elastic-container repartition sweep: weight skew vs. rebalance threshold.
//
// Every rank owns a block slab of a shared container; a Zipf-like weight
// profile concentrates work on the low ranks, and the sweep measures what a
// repartition buys (and costs) as the skew grows:
//   - exchange volume: local elements that change owner per repartition,
//     the alltoallv payload the transition materializes;
//   - convergence: a second rebalance() at the same threshold must be a
//     no-op (the cut derivation is deterministic in the weights), so the
//     noop column is the ping-pong guard from container_test running at
//     bench scale;
//   - the threshold knob: below the measured imbalance nothing moves, so
//     the FIRST threshold column that reports moves brackets the profile's
//     max/mean weight ratio.
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <vector>

#include "container/container.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/runtime.hpp"
#include "support/format.hpp"

namespace mpi = dipdc::minimpi;
using dipdc::container::Container;
using namespace dipdc::support;

namespace {

constexpr std::size_t kTotal = 1 << 16;

struct Cell {
  std::uint64_t moved = 0;        // elements that changed owner, all ranks
  std::uint64_t repartitions = 0; // max over ranks (collective, so equal)
  std::uint64_t noops = 0;
  double sim_time = 0.0;
};

/// Element weight under skew s: w(g) = 1 + s * (1 - g/total).  s = 0 is
/// uniform; larger s piles weight onto the low global indices, i.e. onto
/// the low ranks of the initial block partitioning.
double weight_at(std::size_t g, double skew) {
  return 1.0 + skew * (1.0 - static_cast<double>(g) /
                                 static_cast<double>(kTotal));
}

Cell run_cell(int ranks, double skew, double threshold) {
  std::vector<std::uint64_t> moved(static_cast<std::size_t>(ranks));
  std::vector<std::uint64_t> reparts(static_cast<std::size_t>(ranks));
  std::vector<std::uint64_t> noops(static_cast<std::size_t>(ranks));
  const auto result = mpi::run(ranks, [&](mpi::Comm& comm) {
    const dipdc::container::Partitioning block =
        dipdc::container::Partitioning::block(kTotal, comm.size());
    std::vector<std::uint64_t> slab(block.count(comm.rank()));
    std::iota(slab.begin(), slab.end(),
              static_cast<std::uint64_t>(block.begin(comm.rank())));
    auto c = Container<std::uint64_t>::from_local(comm, kTotal, 1,
                                                  std::move(slab));
    for (std::size_t i = 0; i < c.count(); ++i) {
      c.set_weight(i, weight_at(c.global_begin() + i, skew));
    }
    c.rebalance(threshold);
    // Weights travel with their elements, so a second call at the same
    // threshold sees the identical global profile and must keep the cuts.
    c.rebalance(threshold);
    const auto r = static_cast<std::size_t>(comm.rank());
    moved[r] = c.stats().elements_moved;
    reparts[r] = c.stats().repartitions;
    noops[r] = c.stats().rebalance_noops;
  });
  Cell cell;
  cell.moved = std::accumulate(moved.begin(), moved.end(), std::uint64_t{0});
  cell.repartitions = reparts.front();
  cell.noops = noops.front();
  cell.sim_time = result.max_sim_time();
  return cell;
}

}  // namespace

int main() {
  const std::vector<int> rank_counts = {2, 4, 8};
  const std::vector<double> skews = {0.0, 0.5, 1.0, 4.0};
  const std::vector<double> thresholds = {1.01, 1.25, 2.0};

  std::printf("Elastic container rebalance sweep: %zu elements, linear "
              "weight skew\n\n",
              kTotal);
  std::printf("%5s %5s %10s %7s %6s %12s  %s\n", "ranks", "skew", "threshold",
              "reparts", "noops", "moved-elems", "max sim time");
  for (const int ranks : rank_counts) {
    for (const double skew : skews) {
      for (const double threshold : thresholds) {
        const Cell cell = run_cell(ranks, skew, threshold);
        std::printf("%5d %5.1f %10.2f %7llu %6llu %12llu  %s\n", ranks, skew,
                    threshold,
                    static_cast<unsigned long long>(cell.repartitions),
                    static_cast<unsigned long long>(cell.noops),
                    static_cast<unsigned long long>(cell.moved),
                    seconds(cell.sim_time).c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Reading the table: moved-elems is zero until the skewed profile's "
      "max/mean\nweight ratio clears the threshold, then grows with the "
      "skew; the second\nrebalance at each cell is always a no-op (noops "
      ">= 1), the determinism that\nkeeps threshold-boundary weights from "
      "ping-ponging.\n");
  return 0;
}
