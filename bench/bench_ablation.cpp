// Ablations over the design choices DESIGN.md calls out:
//   1. the analytic DRAM-traffic model vs. the cache simulator (Module 2),
//   2. the Module 4 cost constants: where does the brute/R-tree
//      scalability story flip as the index's per-entry memory cost varies?
//   3. the eager threshold: one protocol knob separating "works" from
//      "deadlocks" for naive blocking code, and its latency effect,
//   4. collective algorithm scaling: binomial bcast latency vs. world size.
#include <cstdio>
#include <string>
#include <vector>

#include "cachesim/cache.hpp"
#include "dataio/dataset.hpp"
#include "minimpi/error.hpp"
#include "minimpi/runtime.hpp"
#include "modules/comm/module1.hpp"
#include "modules/distmatrix/module2.hpp"
#include "modules/rangequery/module4.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m1 = dipdc::modules::comm1;
namespace m2 = dipdc::modules::distmatrix;
namespace m4 = dipdc::modules::rangequery;
namespace cs = dipdc::cachesim;
namespace pm = dipdc::perfmodel;
namespace sp = dipdc::spatial;
using namespace dipdc::support;

namespace {

void ablation_traffic_model() {
  std::printf("Ablation 1: analytic traffic model vs. cache simulator "
              "(distance matrix, 64 rows x 1024 points x 90-D, 256 KiB "
              "cache)\n\n");
  const std::size_t n = 1024, dim = 90, rows = 64;
  const auto d = dipdc::dataio::generate_uniform(n, dim, 0.0, 1.0, 1);
  std::vector<double> out(rows * n);
  const cs::CacheConfig cache{256 * 1024, 64, 8};
  Table t;
  t.set_header({"kernel", "simulated traffic", "analytic estimate",
                "ratio"});
  t.set_alignment({Align::kLeft});
  for (const std::size_t tile : {0u, 32u, 128u, 320u, 1024u}) {
    cs::CacheHierarchy h({cache});
    cs::CacheTracer tracer(&h);
    if (tile == 0) {
      m2::distance_rows_rowwise(d.values(), dim, n, 0, rows,
                                std::span<double>(out), tracer);
    } else {
      m2::distance_rows_tiled(d.values(), dim, n, 0, rows, tile,
                              std::span<double>(out), tracer);
    }
    const auto measured = static_cast<double>(h.memory_traffic_bytes());
    const double estimate =
        tile == 0
            ? m2::estimated_traffic_rowwise(rows, n, dim, cache.size_bytes)
            : m2::estimated_traffic_tiled(rows, n, dim, tile,
                                          cache.size_bytes);
    t.add_row({tile == 0 ? "row-wise" : "tiled T=" + std::to_string(tile),
               bytes(static_cast<std::uint64_t>(measured)),
               bytes(static_cast<std::uint64_t>(estimate)),
               fixed(estimate / measured, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(the estimate tracks the simulator within ~2x across "
              "regimes, which is what the\n machine model needs to "
              "reproduce the module's shapes)\n\n");
}

void ablation_cost_constants() {
  std::printf("Ablation 2: Module 4 index memory-cost constant.  R-tree "
              "speedup at 32 ranks\n(one node) as bytes-per-entry varies — "
              "the memory-bound story needs the index's\n poor locality, "
              "not a particular constant:\n\n");
  Xoshiro256 rng(2);
  std::vector<sp::Point2> points(30000);
  for (auto& p : points) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  const auto queries = m4::make_query_workload(512, 100.0, 8.0, 3);
  Table t;
  t.set_header({"bytes/entry (index)", "R-tree speedup @32",
                "brute speedup @32", "R-tree still faster?"});
  for (const double bpe : {4.0, 16.0, 48.0, 96.0}) {
    auto time_at = [&](int p, m4::Engine engine) {
      m4::Config cfg;
      cfg.engine = engine;
      cfg.costs.bytes_per_entry_index = bpe;
      mpi::RuntimeOptions opts;
      opts.machine = pm::MachineConfig::monsoon_like(1);
      double tt = 0.0;
      mpi::run(
          p,
          [&](mpi::Comm& comm) {
            tt = m4::run_distributed(comm, points, queries, cfg).sim_time;
          },
          opts);
      return tt;
    };
    const double r1 = time_at(1, m4::Engine::kRTree);
    const double r32 = time_at(32, m4::Engine::kRTree);
    const double b1 = time_at(1, m4::Engine::kBruteForce);
    const double b32 = time_at(32, m4::Engine::kBruteForce);
    t.add_row({fixed(bpe, 0), fixed(r1 / r32, 2), fixed(b1 / b32, 2),
               r32 < b32 ? "yes" : "no"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(with byte costs as low as a streaming scan the R-tree "
              "would scale like the\n brute force — the saturation comes "
              "from modelling pointer-chased nodes)\n\n");
}

void ablation_eager_threshold() {
  std::printf("Ablation 3: the eager/rendezvous threshold\n\n");
  Table t;
  t.set_header({"threshold", "naive blocking ring (8 ranks, 4 KiB token)",
                "ping-pong 4 KiB mean one-way"});
  t.set_alignment({Align::kLeft});
  for (const std::size_t threshold : {0u, 1024u, 65536u}) {
    mpi::RuntimeOptions opts;
    opts.eager_threshold = threshold;
    std::string ring_outcome = "completed";
    try {
      mpi::run(
          8,
          [](mpi::Comm& comm) {
            const int next = (comm.rank() + 1) % comm.size();
            const int prev =
                (comm.rank() - 1 + comm.size()) % comm.size();
            std::vector<char> token(4096);
            comm.send(std::span<const char>(token), next, 0);
            comm.recv(std::span<char>(token), prev, 0);
          },
          opts);
    } catch (const mpi::DeadlockError&) {
      ring_outcome = "DEADLOCK detected";
    }
    double one_way = 0.0;
    mpi::run(
        2,
        [&](mpi::Comm& comm) {
          const auto r = m1::ping_pong(comm, 50, 4096);
          if (comm.rank() == 0) one_way = r.mean_one_way;
        },
        opts);
    t.add_row({bytes(threshold), ring_outcome, seconds(one_way)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(the same user code is correct or deadlocked depending on a "
              "protocol constant —\n why MPI_Send's buffering must never "
              "be relied upon, Module 1)\n\n");
}

void ablation_collective_scaling() {
  std::printf("Ablation 4: binomial broadcast cost vs. world size "
              "(64 KiB payload, intra-node)\n\n");
  Table t;
  t.set_header({"ranks", "bcast sim time", "time / ceil(log2 p)"});
  for (const int p : {2, 4, 8, 16, 32, 64}) {
    double tt = 0.0;
    mpi::run(p, [&](mpi::Comm& comm) {
      std::vector<char> buf(64 * 1024);
      const double t0 = comm.wtime();
      comm.bcast(std::span<char>(buf), 0);
      const double el = comm.wtime() - t0;
      if (comm.rank() == 0) tt = el;
    });
    int log2p = 0;
    while ((1 << log2p) < p) ++log2p;
    // The root finishes after sending log2(p) messages; leaf completion
    // is the true depth cost.  Report the max across ranks instead.
    double max_t = 0.0;
    mpi::run(p, [&](mpi::Comm& comm) {
      std::vector<char> buf(64 * 1024);
      const double t0 = comm.wtime();
      comm.bcast(std::span<char>(buf), 0);
      comm.barrier();
      const double el = comm.wtime() - t0;
      if (comm.rank() == 0) max_t = el;
    });
    (void)tt;
    t.add_row({std::to_string(p), seconds(max_t),
               seconds(max_t / log2p)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(logarithmic depth: doubling the world adds roughly one "
              "message time)\n");
}

}  // namespace

int main() {
  ablation_traffic_model();
  ablation_cost_constants();
  ablation_eager_threshold();
  ablation_collective_scaling();
  return 0;
}
