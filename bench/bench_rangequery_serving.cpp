// Module 4 serving-mode saturation sweep: offered load vs. achieved
// throughput and tail latency for the sharded range-query service.
//
// The sweep drives `serve()` at increasing open-loop rates across a fixed
// shard layout and reads the two curves every serving chapter is built
// around (docs/handbook/serving.md):
//   - below the knee, achieved qps tracks offered qps and the p99 is the
//     batch-fill wait (latency *falls* as load rises — batches close
//     sooner);
//   - past the knee, achieved qps plateaus at the service capacity, the
//     bounded admission queue fills, arrivals are rejected, and the p99
//     jumps to the queue-bound ceiling.
// The knee row is the last level whose achieved rate stays within 95% of
// the offered rate.
//
// A second, wall-clock section times the point-in-rect filter kernel
// (kernels/filter.hpp) scalar vs. SIMD on one large shard scan — the
// speedup the AVX2 path buys the shards' inner loop.  Counts must agree
// exactly (the bit-identity contract); the bench aborts if they differ.
//
// Usage: bench_rangequery_serving [--quick] [--out=FILE]
//   --quick   3 sweep levels, short duration (the CI perf-smoke leg)
//   --out     also write the results as JSON (BENCH_rangequery_serving.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "kernels/dispatch.hpp"
#include "kernels/filter.hpp"
#include "minimpi/runtime.hpp"
#include "modules/rangequery/serving.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"

namespace mpi = dipdc::minimpi;
namespace m4 = dipdc::modules::rangequery;
namespace kn = dipdc::kernels;
using namespace dipdc::support;

namespace {

struct Level {
  double offered_qps = 0.0;
  m4::ServeResult r;
};

Level run_level(int ranks, double qps, double duration) {
  m4::ServeConfig cfg;
  cfg.qps = qps;
  cfg.duration = duration;
  Level level;
  level.offered_qps = qps;
  mpi::run(ranks, [&](mpi::Comm& comm) {
    const auto res = m4::serve(comm, cfg);
    if (comm.rank() == 0) level.r = res;
  });
  return level;
}

struct KernelTiming {
  double scalar_seconds = 0.0;
  double simd_seconds = 0.0;
  std::uint64_t matches = 0;
  bool simd_available = false;
};

/// Times one shard-sized scan (repeated) per ISA, wall clock.  The same
/// query set runs on both paths and the counts must agree exactly.
KernelTiming time_filter_kernel(std::size_t n, int repeats) {
  Xoshiro256 rng(7);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(0.0, 100.0);
    ys[i] = rng.uniform(0.0, 100.0);
  }
  KernelTiming t;
  t.simd_available = kn::simd_supported();
  const auto time_isa = [&](kn::Isa isa, std::uint64_t* total) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t acc = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      const double lo = 10.0 + static_cast<double>(rep % 7);
      acc += kn::count_in_rect(isa, xs.data(), ys.data(), n, lo, lo,
                               lo + 30.0, lo + 30.0);
    }
    const auto t1 = std::chrono::steady_clock::now();
    *total = acc;
    return std::chrono::duration<double>(t1 - t0).count();
  };
  std::uint64_t scalar_total = 0;
  t.scalar_seconds = time_isa(kn::Isa::kScalar, &scalar_total);
  t.matches = scalar_total;
  if (t.simd_available) {
    std::uint64_t simd_total = 0;
    t.simd_seconds = time_isa(kn::Isa::kSimd, &simd_total);
    if (simd_total != scalar_total) {
      std::fprintf(stderr,
                   "FATAL: scalar/SIMD count mismatch (%llu vs %llu)\n",
                   static_cast<unsigned long long>(scalar_total),
                   static_cast<unsigned long long>(simd_total));
      std::abort();
    }
  }
  return t;
}

std::string json_escape_free(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  const int ranks = 5;  // 1 driver + 4 shards
  const double duration = quick ? 0.05 : 0.2;
  // Levels bracketing the measured ~125 kq/s capacity of the default
  // config (50k points over 4 shards, batch 16, pipeline 2).
  const std::vector<double> levels =
      quick ? std::vector<double>{50e3, 125e3, 250e3}
            : std::vector<double>{25e3, 50e3, 75e3, 100e3, 125e3, 150e3,
                                  200e3, 300e3};

  std::printf("Module 4 serving saturation sweep: %d ranks, "
              "%s per level\n\n",
              ranks, seconds(duration).c_str());
  std::printf("%12s %12s %9s %9s %9s %9s %9s\n", "offered q/s",
              "achieved q/s", "p50", "p99", "admitted", "rejected",
              "batches");
  std::vector<Level> sweep;
  for (const double qps : levels) {
    const Level level = run_level(ranks, qps, duration);
    sweep.push_back(level);
    std::printf("%12.0f %12.0f %9s %9s %9llu %9llu %9llu\n", qps,
                level.r.achieved_qps, seconds(level.r.p50_latency).c_str(),
                seconds(level.r.p99_latency).c_str(),
                static_cast<unsigned long long>(level.r.admitted),
                static_cast<unsigned long long>(level.r.rejected),
                static_cast<unsigned long long>(level.r.batches));
  }

  std::size_t knee = 0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].r.achieved_qps >= 0.95 * sweep[i].offered_qps) knee = i;
  }
  std::printf("\nknee: achieved tracks offered up to ~%.0f q/s; past it "
              "the service\nplateaus and the bounded queue converts excess "
              "arrivals into rejections.\n",
              sweep[knee].offered_qps);

  const KernelTiming kt =
      time_filter_kernel(1u << 20, quick ? 8 : 64);
  std::printf("\npoint-in-rect filter, %u points x %d windows: scalar %s",
              1u << 20, quick ? 8 : 64, seconds(kt.scalar_seconds).c_str());
  if (kt.simd_available) {
    std::printf(", avx2 %s (%.2fx), counts identical\n",
                seconds(kt.simd_seconds).c_str(),
                kt.scalar_seconds / kt.simd_seconds);
  } else {
    std::printf(" (no AVX2 on this host)\n");
  }

  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"rangequery_serving\",\n");
    std::fprintf(f,
                 "  \"config\": {\"ranks\": %d, \"shards\": %d, "
                 "\"n_points\": 50000, \"batch\": 16, \"queue_cap\": 256, "
                 "\"pipeline\": 2, \"duration_s\": %s, \"mix\": "
                 "\"uniform\"},\n",
                 ranks, ranks - 1, json_escape_free(duration).c_str());
    std::fprintf(f, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const m4::ServeResult& r = sweep[i].r;
      std::fprintf(
          f,
          "    {\"offered_qps\": %s, \"achieved_qps\": %s, "
          "\"p50_us\": %s, \"p99_us\": %s, \"mean_us\": %s, "
          "\"offered\": %llu, \"admitted\": %llu, \"rejected\": %llu, "
          "\"completed\": %llu, \"batches\": %llu, "
          "\"total_matches\": %llu}%s\n",
          json_escape_free(sweep[i].offered_qps).c_str(),
          json_escape_free(r.achieved_qps).c_str(),
          json_escape_free(r.p50_latency * 1e6).c_str(),
          json_escape_free(r.p99_latency * 1e6).c_str(),
          json_escape_free(r.mean_latency * 1e6).c_str(),
          static_cast<unsigned long long>(r.offered),
          static_cast<unsigned long long>(r.admitted),
          static_cast<unsigned long long>(r.rejected),
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.batches),
          static_cast<unsigned long long>(r.total_matches),
          i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"knee_offered_qps\": %s,\n",
                 json_escape_free(sweep[knee].offered_qps).c_str());
    std::fprintf(f,
                 "  \"filter_kernel\": {\"n_points\": %u, \"windows\": %d, "
                 "\"scalar_s\": %s, \"simd_s\": %s, \"speedup\": %s, "
                 "\"simd_available\": %s, \"counts_identical\": true}\n",
                 1u << 20, quick ? 8 : 64,
                 json_escape_free(kt.scalar_seconds).c_str(),
                 json_escape_free(kt.simd_seconds).c_str(),
                 json_escape_free(kt.simd_available
                                      ? kt.scalar_seconds / kt.simd_seconds
                                      : 0.0)
                     .c_str(),
                 kt.simd_available ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return 0;
}
