// Ancillary SLURM module experiments: FIFO vs. EASY backfill on a batch
// workload, and a co-scheduling interference matrix (the mechanics behind
// Module 4's activity 3 and the Figure 1 quiz question).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "slurmsim/slurmsim.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace sl = dipdc::slurmsim;
using namespace dipdc::support;

namespace {

std::vector<sl::JobSpec> make_workload(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<sl::JobSpec> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    sl::JobSpec j;
    j.name = "job" + std::to_string(i);
    j.nodes = 1 + static_cast<int>(rng.uniform_index(3));
    j.tasks_per_node = 8 << rng.uniform_index(3);  // 8, 16, or 32
    j.work_seconds = 30.0 + rng.uniform(0.0, 570.0);
    j.time_limit = j.work_seconds * rng.uniform(1.0, 2.0);
    j.mem_bw_demand = rng.uniform(0.0, 0.9);
    j.exclusive = rng.uniform() < 0.2;
    j.submit_time = rng.uniform(0.0, 600.0);
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace

int main() {
  const sl::ClusterSpec cluster{4, 32};
  const auto jobs = make_workload(60, 7777);

  std::printf("Batch workload: 60 jobs on a 4-node x 32-core cluster\n\n");
  Table t;
  t.set_header({"policy", "makespan", "mean wait", "max wait",
                "utilization", "mean slowdown"});
  t.set_alignment({Align::kLeft});
  for (const auto policy : {sl::Policy::kFifo, sl::Policy::kBackfill}) {
    const auto r = sl::simulate(cluster, policy, jobs);
    double wait_sum = 0.0, wait_max = 0.0, slow_sum = 0.0;
    for (const auto& j : r.jobs) {
      wait_sum += j.wait_time();
      wait_max = std::max(wait_max, j.wait_time());
      slow_sum += j.slowdown();
    }
    const auto nj = static_cast<double>(r.jobs.size());
    t.add_row({policy == sl::Policy::kFifo ? "FIFO" : "EASY backfill",
               seconds(r.makespan), seconds(wait_sum / nj),
               seconds(wait_max), percent(r.utilization(cluster)),
               fixed(slow_sum / nj, 2) + "x"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(backfill slots small jobs into reservation gaps: waits and "
              "makespan drop while\n the queue-head job is never "
              "delayed)\n\n");

  // --- Interference matrix: job slowdown by bandwidth-demand pairing. ---
  std::printf("Co-scheduling interference: two 16-task jobs sharing one "
              "32-core node\n(cell = slowdown of job A when paired with "
              "job B)\n\n");
  const std::vector<double> demands = {0.1, 0.3, 0.5, 0.8};
  Table m;
  std::vector<std::string> header{"A bw \\ B bw"};
  for (const double d : demands) header.push_back(fixed(d, 1));
  m.set_header(header);
  for (const double a : demands) {
    std::vector<std::string> row{fixed(a, 1)};
    for (const double b : demands) {
      sl::JobSpec ja, jb;
      ja.name = "A";
      jb.name = "B";
      ja.tasks_per_node = jb.tasks_per_node = 16;
      ja.work_seconds = jb.work_seconds = 100.0;
      ja.time_limit = jb.time_limit = 100.0;
      ja.mem_bw_demand = a;
      jb.mem_bw_demand = b;
      const auto r =
          sl::simulate(sl::ClusterSpec{1, 32}, sl::Policy::kFifo, {ja, jb});
      row.push_back(fixed(r.jobs[0].slowdown(), 2) + "x");
    }
    m.add_row(std::move(row));
  }
  std::printf("%s", m.render().c_str());
  std::printf("(the diagonal's lower-right is the 'terrible twins' corner: "
              "identical\n memory-hungry jobs are the worst co-schedule; "
              "pairing memory-bound with\n compute-bound costs nothing — "
              "the answer to the Figure 1 quiz question)\n");
  return 0;
}
