// Module 7 (extension) experiments: MapReduce word count — combiner
// effect, partitioning strategies under Zipf skew, and strong scaling.
#include <cstdio>
#include <string>
#include <vector>

#include "dataio/dataset.hpp"
#include "minimpi/runtime.hpp"
#include "modules/mapreduce/module7.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m7 = dipdc::modules::mapreduce;
namespace io = dipdc::dataio;
namespace pm = dipdc::perfmodel;
using namespace dipdc::support;

namespace {

std::vector<std::uint64_t> shard(const std::vector<std::uint64_t>& all,
                                 int rank, int p) {
  const auto parts =
      io::block_partition(all.size(), static_cast<std::size_t>(p));
  const auto [b, e] = parts[static_cast<std::size_t>(rank)];
  return {all.begin() + static_cast<std::ptrdiff_t>(b),
          all.begin() + static_cast<std::ptrdiff_t>(e)};
}

m7::Result run_cfg(int ranks, const std::vector<std::uint64_t>& all,
                   const m7::Config& cfg) {
  mpi::RuntimeOptions opts;
  opts.machine = pm::MachineConfig::monsoon_like(2);
  m7::Result out;
  mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        const auto mine = shard(all, comm.rank(), comm.size());
        const auto r = m7::word_count(comm, mine, cfg);
        if (comm.rank() == 0) out = r;
      },
      opts);
  return out;
}

}  // namespace

int main() {
  const std::size_t n = 2000000;
  const std::uint64_t vocab = 1 << 15;
  const auto tokens = io::generate_zipf_tokens(n, vocab, 1.1, 2021);

  std::printf("MapReduce word count: %zu Zipf(1.1) tokens, vocabulary %llu, "
              "16 ranks on 2 nodes\n\n",
              n, static_cast<unsigned long long>(vocab));

  // --- Combiner x partitioning matrix. ---
  Table t;
  t.set_header({"configuration", "shuffle tuples (rank 0)",
                "reducer imbalance", "sim time"});
  t.set_alignment({Align::kLeft});
  for (const bool combine : {false, true}) {
    for (const auto part :
         {m7::Partitioning::kHash, m7::Partitioning::kRange}) {
      m7::Config cfg;
      cfg.map_side_combine = combine;
      cfg.partitioning = part;
      cfg.vocabulary = vocab;
      const auto r = run_cfg(16, tokens, cfg);
      std::string name = combine ? "combiner + " : "no combiner + ";
      name += part == m7::Partitioning::kHash ? "hash" : "range";
      t.add_row({name, std::to_string(r.shuffle_tuples_sent),
                 fixed(r.reducer_imbalance, 2), seconds(r.sim_time)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "(the combiner collapses the shuffle from O(tokens) to O(distinct "
      "keys); range\n partitioning funnels the Zipf head to reducer 0 — "
      "hash partitioning spreads it)\n\n");

  // --- Strong scaling. ---
  std::printf("Strong scaling (combiner + hash):\n\n");
  Table s;
  s.set_header({"ranks", "sim time", "speedup", "map", "shuffle", "reduce"});
  std::vector<double> times;
  const std::vector<int> rank_counts = {1, 2, 4, 8, 16, 32};
  for (const int p : rank_counts) {
    m7::Config cfg;
    cfg.vocabulary = vocab;
    const auto r = run_cfg(p, tokens, cfg);
    times.push_back(r.sim_time);
    s.add_row({std::to_string(p), seconds(r.sim_time),
               fixed(times.front() / r.sim_time, 2), seconds(r.map_time),
               seconds(r.shuffle_time), seconds(r.reduce_time)});
  }
  std::printf("%s", s.render().c_str());
  std::printf("(the map phase scales with ranks; the shuffle and the "
              "skew-bound reduce phase\n eventually dominate — the classic "
              "MapReduce scaling profile)\n");
  return 0;
}
