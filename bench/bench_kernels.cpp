// Native (wall-clock) microbenchmarks of the computational kernels, via
// google-benchmark.  The table/figure reproductions use *simulated* time;
// this binary sanity-checks that the underlying kernels are real,
// reasonably optimized code whose relative behaviour (e.g. tiled vs.
// row-wise) also shows up on actual hardware.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "cachesim/cache.hpp"
#include "dataio/dataset.hpp"
#include "index/rtree.hpp"
#include "modules/distmatrix/module2.hpp"
#include "support/rng.hpp"

namespace m2 = dipdc::modules::distmatrix;
namespace cs = dipdc::cachesim;
namespace sp = dipdc::spatial;
namespace io = dipdc::dataio;

namespace {

void BM_DistanceRowwise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 90;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 1);
  std::vector<double> out(32 * n);
  cs::NullTracer tracer;
  for (auto _ : state) {
    m2::distance_rows_rowwise(d.values(), dim, n, 0, 32,
                              std::span<double>(out), tracer);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DistanceRowwise)->Arg(1024)->Arg(4096);

void BM_DistanceTiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 90;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 1);
  std::vector<double> out(32 * n);
  cs::NullTracer tracer;
  for (auto _ : state) {
    m2::distance_rows_tiled(d.values(), dim, n, 0, 32, /*tile=*/128,
                            std::span<double>(out), tracer);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DistanceTiled)->Arg(1024)->Arg(4096);

void BM_RTreeQuery(benchmark::State& state) {
  dipdc::support::Xoshiro256 rng(7);
  std::vector<sp::Point2> pts(static_cast<std::size_t>(state.range(0)));
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  const auto tree = sp::RTree::bulk_load(pts, 16);
  std::vector<std::uint32_t> hits;
  std::size_t qi = 0;
  for (auto _ : state) {
    hits.clear();
    const double x = static_cast<double>(qi % 90);
    tree.query({x, x, x + 5.0, x + 5.0}, hits);
    benchmark::DoNotOptimize(hits.data());
    ++qi;
  }
}
BENCHMARK(BM_RTreeQuery)->Arg(10000)->Arg(100000);

void BM_BruteForceQuery(benchmark::State& state) {
  dipdc::support::Xoshiro256 rng(7);
  std::vector<sp::Point2> pts(static_cast<std::size_t>(state.range(0)));
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  std::vector<std::uint32_t> hits;
  std::size_t qi = 0;
  for (auto _ : state) {
    hits.clear();
    const double x = static_cast<double>(qi % 90);
    sp::brute_force_query(pts, {x, x, x + 5.0, x + 5.0}, hits);
    benchmark::DoNotOptimize(hits.data());
    ++qi;
  }
}
BENCHMARK(BM_BruteForceQuery)->Arg(10000)->Arg(100000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  dipdc::support::Xoshiro256 rng(9);
  std::vector<sp::Point2> pts(static_cast<std::size_t>(state.range(0)));
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  for (auto _ : state) {
    auto tree = sp::RTree::bulk_load(pts, 16);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(100000);

void BM_CacheSimAccess(benchmark::State& state) {
  cs::CacheHierarchy h = cs::CacheHierarchy::typical();
  std::uint64_t addr = 0;
  for (auto _ : state) {
    h.access(addr);
    addr += 64;
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheSimAccess);

void BM_RngUniform(benchmark::State& state) {
  dipdc::support::Xoshiro256 rng(1);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.uniform();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngUniform);

void BM_LocalSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = io::generate_uniform(n, 1, 0.0, 1.0, 5);
  std::vector<double> work(d.values().begin(), d.values().end());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(d.values().begin(), d.values().end(), work.begin());
    state.ResumeTiming();
    std::sort(work.begin(), work.end());
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LocalSort)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
