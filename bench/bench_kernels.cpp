// Native (wall-clock) microbenchmarks of the computational kernels, via
// google-benchmark.  The table/figure reproductions use *simulated* time;
// this binary sanity-checks that the underlying kernels are real,
// reasonably optimized code whose relative behaviour (e.g. tiled vs.
// row-wise, scalar vs. SIMD dispatch) also shows up on actual hardware.
//
// The BM_Kernel* group registers every src/kernels entry point once per
// available ISA (scalar always; simd only when the host supports AVX2), so
// `items_per_second` ratios between the <scalar> and <simd> rows are the
// dispatch layer's measured speedups.  Extra flags beyond google-benchmark's:
//
//   --quick    CI smoke mode: run only the BM_Kernel* group with a small
//              min-time, so the perf-smoke job finishes in seconds.
//
// `cmake --build build --target bench_kernels_json` writes the full run to
// BENCH_kernels.json at the repo root.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cachesim/cache.hpp"
#include "dataio/dataset.hpp"
#include "index/rtree.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/distance.hpp"
#include "kernels/kmeans.hpp"
#include "kernels/sort.hpp"
#include "modules/distmatrix/module2.hpp"
#include "support/rng.hpp"

namespace m2 = dipdc::modules::distmatrix;
namespace cs = dipdc::cachesim;
namespace sp = dipdc::spatial;
namespace io = dipdc::dataio;
namespace ker = dipdc::kernels;

namespace {

void BM_DistanceRowwise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 90;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 1);
  std::vector<double> out(32 * n);
  cs::NullTracer tracer;
  for (auto _ : state) {
    m2::distance_rows_rowwise(d.values(), dim, n, 0, 32,
                              std::span<double>(out), tracer);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DistanceRowwise)->Arg(1024)->Arg(4096);

void BM_DistanceTiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 90;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 1);
  std::vector<double> out(32 * n);
  cs::NullTracer tracer;
  for (auto _ : state) {
    m2::distance_rows_tiled(d.values(), dim, n, 0, 32, /*tile=*/128,
                            std::span<double>(out), tracer);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DistanceTiled)->Arg(1024)->Arg(4096);

void BM_RTreeQuery(benchmark::State& state) {
  dipdc::support::Xoshiro256 rng(7);
  std::vector<sp::Point2> pts(static_cast<std::size_t>(state.range(0)));
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  const auto tree = sp::RTree::bulk_load(pts, 16);
  std::vector<std::uint32_t> hits;
  std::size_t qi = 0;
  for (auto _ : state) {
    hits.clear();
    const double x = static_cast<double>(qi % 90);
    tree.query({x, x, x + 5.0, x + 5.0}, hits);
    benchmark::DoNotOptimize(hits.data());
    ++qi;
  }
}
BENCHMARK(BM_RTreeQuery)->Arg(10000)->Arg(100000);

void BM_BruteForceQuery(benchmark::State& state) {
  dipdc::support::Xoshiro256 rng(7);
  std::vector<sp::Point2> pts(static_cast<std::size_t>(state.range(0)));
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  std::vector<std::uint32_t> hits;
  std::size_t qi = 0;
  for (auto _ : state) {
    hits.clear();
    const double x = static_cast<double>(qi % 90);
    sp::brute_force_query(pts, {x, x, x + 5.0, x + 5.0}, hits);
    benchmark::DoNotOptimize(hits.data());
    ++qi;
  }
}
BENCHMARK(BM_BruteForceQuery)->Arg(10000)->Arg(100000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  dipdc::support::Xoshiro256 rng(9);
  std::vector<sp::Point2> pts(static_cast<std::size_t>(state.range(0)));
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  for (auto _ : state) {
    auto tree = sp::RTree::bulk_load(pts, 16);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(100000);

void BM_CacheSimAccess(benchmark::State& state) {
  cs::CacheHierarchy h = cs::CacheHierarchy::typical();
  std::uint64_t addr = 0;
  for (auto _ : state) {
    h.access(addr);
    addr += 64;
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheSimAccess);

void BM_RngUniform(benchmark::State& state) {
  dipdc::support::Xoshiro256 rng(1);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.uniform();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngUniform);

void BM_LocalSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = io::generate_uniform(n, 1, 0.0, 1.0, 5);
  std::vector<double> work(d.values().begin(), d.values().end());
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(d.values().begin(), d.values().end(), work.begin());
    state.ResumeTiming();
    std::sort(work.begin(), work.end());
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LocalSort)->Arg(100000);

// ---------------------------------------------------------------------------
// BM_Kernel* — the dispatched src/kernels entry points, one registration per
// available ISA.  Registered dynamically (not via BENCHMARK) so the <simd>
// rows only exist on hosts where kernels::simd_supported() is true.

void bm_kernel_distance_rows(benchmark::State& state, ker::Isa isa,
                             std::size_t n) {
  const std::size_t dim = 90;
  const std::size_t rows = 32;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 1);
  std::vector<double> out(rows * n);
  for (auto _ : state) {
    ker::distance_rows(isa, d.values().data(), dim, n, 0, rows,
                       /*tile=*/128, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows * n));
}

void bm_kernel_distance_row(benchmark::State& state, ker::Isa isa,
                            std::size_t n) {
  const std::size_t dim = 90;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 2);
  std::vector<double> out(n);
  for (auto _ : state) {
    ker::distance_row(isa, d.values().data(), d.values().data(), dim, 0, n,
                      out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void bm_kernel_kmeans_assign(benchmark::State& state, ker::Isa isa,
                             std::size_t n, std::size_t k) {
  const std::size_t dim = 90;
  const auto d = io::generate_uniform(n, dim, 0.0, 1.0, 3);
  std::vector<double> centroids(
      d.values().begin(),
      d.values().begin() + static_cast<std::ptrdiff_t>(k * dim));
  std::vector<std::size_t> assignment(n);
  std::vector<double> sums(k * dim);
  std::vector<double> counts(k);
  for (auto _ : state) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0.0);
    ker::assign_points(isa, d.values().data(), n, dim, centroids.data(), k,
                       assignment.data(), sums.data(), counts.data());
    benchmark::DoNotOptimize(assignment.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * k));
}

void bm_kernel_update_centroids(benchmark::State& state, ker::Isa isa,
                                std::size_t k) {
  const std::size_t dim = 90;
  const auto d = io::generate_uniform(k, dim, 0.0, 1.0, 4);
  std::vector<double> centroids(d.values().begin(), d.values().end());
  const auto s = io::generate_uniform(k, dim, 0.0, 100.0, 5);
  std::vector<double> counts(k, 10.0);
  for (auto _ : state) {
    const double movement = ker::update_centroids(
        isa, centroids.data(), s.values().data(), counts.data(), k, dim);
    benchmark::DoNotOptimize(movement);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(k * dim));
}

void bm_kernel_histogram(benchmark::State& state, ker::Isa isa,
                         std::size_t n) {
  const std::size_t bins = 256;
  const auto d = io::generate_uniform(n, 1, 0.0, 10.0, 6);
  std::vector<std::uint64_t> hist(bins, 0);
  for (auto _ : state) {
    ker::histogram(isa, d.values().data(), n, 0.0, 10.0 / 256.0, bins,
                   hist.data());
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void bm_kernel_bucket_indices(benchmark::State& state, ker::Isa isa,
                              std::size_t n) {
  const std::size_t nsplit = 15;  // p = 16 ranks
  const auto d = io::generate_uniform(n, 1, 0.0, 10.0, 7);
  std::vector<double> splitters(nsplit);
  for (std::size_t s = 0; s < nsplit; ++s) {
    splitters[s] = 10.0 * static_cast<double>(s + 1) /
                   static_cast<double>(nsplit + 1);
  }
  std::vector<std::uint32_t> dest(n);
  for (auto _ : state) {
    ker::bucket_indices(isa, d.values().data(), n, splitters.data(), nsplit,
                        dest.data());
    benchmark::DoNotOptimize(dest.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void register_kernel_benches() {
  struct IsaCase {
    ker::Isa isa;
    const char* name;
  };
  std::vector<IsaCase> isas = {{ker::Isa::kScalar, "scalar"}};
  if (ker::simd_supported()) isas.push_back({ker::Isa::kSimd, "simd"});
  const auto reg = [](const std::string& name, auto fn) {
    benchmark::RegisterBenchmark(name.c_str(), fn);
  };
  for (const auto& c : isas) {
    const std::string tag = std::string("<") + c.name + ">";
    const ker::Isa isa = c.isa;
    for (const std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
      reg("BM_KernelDistanceRows" + tag + "/" + std::to_string(n),
          [isa, n](benchmark::State& s) {
            bm_kernel_distance_rows(s, isa, n);
          });
    }
    reg("BM_KernelDistanceRow" + tag + "/4096",
        [isa](benchmark::State& s) {
          bm_kernel_distance_row(s, isa, 4096);
        });
    for (const std::size_t k : {std::size_t{16}, std::size_t{64}}) {
      reg("BM_KernelKmeansAssign" + tag + "/8192/k" + std::to_string(k),
          [isa, k](benchmark::State& s) {
            bm_kernel_kmeans_assign(s, isa, 8192, k);
          });
    }
    reg("BM_KernelUpdateCentroids" + tag + "/k64",
        [isa](benchmark::State& s) {
          bm_kernel_update_centroids(s, isa, 64);
        });
    reg("BM_KernelHistogram" + tag + "/100000",
        [isa](benchmark::State& s) { bm_kernel_histogram(s, isa, 100000); });
    reg("BM_KernelBucketIndices" + tag + "/100000",
        [isa](benchmark::State& s) {
          bm_kernel_bucket_indices(s, isa, 100000);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --quick before google-benchmark sees argv; in quick mode run
  // only the BM_Kernel* group with a tiny min-time (the CI perf smoke).
  std::vector<char*> args;
  bool quick = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  static char kMinTime[] = "--benchmark_min_time=0.02";
  static char kFilter[] = "--benchmark_filter=BM_Kernel";
  if (quick) {
    args.push_back(kMinTime);
    args.push_back(kFilter);
  }
  register_kernel_benches();
  int argn = static_cast<int>(args.size());
  benchmark::Initialize(&argn, args.data());
  if (benchmark::ReportUnrecognizedArguments(argn, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
