// Module 4 experiments (paper §III-E): strong scaling of brute-force vs.
// R-tree range queries (activities 1-2) and the resource-allocation
// experiment (activity 3): p ranks on 1 node vs. 2 nodes.
#include <cstdio>
#include <string>
#include <vector>

#include "minimpi/runtime.hpp"
#include "modules/rangequery/module4.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m4 = dipdc::modules::rangequery;
namespace pm = dipdc::perfmodel;
namespace sp = dipdc::spatial;
using namespace dipdc::support;

namespace {

std::vector<sp::Point2> make_points(std::size_t n) {
  Xoshiro256 rng(404);
  std::vector<sp::Point2> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  return pts;
}

double run_config(int ranks, m4::Engine engine,
                  const std::vector<sp::Point2>& points,
                  const std::vector<sp::Rect>& queries,
                  const pm::MachineConfig& machine, m4::Result* out = nullptr) {
  mpi::RuntimeOptions opts;
  opts.machine = machine;
  m4::Config cfg;
  cfg.engine = engine;
  double t = 0.0;
  mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        const auto r = m4::run_distributed(comm, points, queries, cfg);
        t = r.sim_time;
        if (out != nullptr && comm.rank() == 0) *out = r;
      },
      opts);
  return t;
}

}  // namespace

int main() {
  const auto points = make_points(50000);
  const auto queries = m4::make_query_workload(1024, 100.0, 8.0, 41);
  const auto one_node = pm::MachineConfig::monsoon_like(1);

  // --- Activities 1 & 2: strong scaling, brute force vs. R-tree. ---
  std::printf("Range queries: 50k points, 1024 box queries, one 32-core "
              "node\n\n");
  Table t;
  t.set_header({"ranks", "brute time", "brute speedup", "R-tree time",
                "R-tree speedup", "R-tree advantage"});
  const std::vector<int> rank_counts = {1, 2, 4, 8, 16, 32};
  std::vector<double> tb, tr;
  m4::Result brute_res, rtree_res;
  for (const int p : rank_counts) {
    tb.push_back(run_config(p, m4::Engine::kBruteForce, points, queries,
                            one_node, &brute_res));
    tr.push_back(run_config(p, m4::Engine::kRTree, points, queries,
                            one_node, &rtree_res));
  }
  const auto sb = pm::speedups(tb);
  const auto sr = pm::speedups(tr);
  for (std::size_t i = 0; i < rank_counts.size(); ++i) {
    t.add_row({std::to_string(rank_counts[i]), seconds(tb[i]),
               fixed(sb[i], 2), seconds(tr[i]), fixed(sr[i], 2),
               fixed(tb[i] / tr[i], 1) + "x"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("comparisons per engine (all ranks): brute %s, R-tree %s "
              "(%s node visits)\n",
              count(brute_res.entries_checked).c_str(),
              count(rtree_res.entries_checked).c_str(),
              count(rtree_res.nodes_visited).c_str());
  std::printf(
      "(shape: brute force scales almost linearly but the R-tree — with "
      "its higher\n memory-access:distance-calculation ratio — saturates; "
      "the R-tree is still\n absolutely faster at every rank count: "
      "efficient algorithms often scale worse)\n\n");

  // --- Activity 3: resource allocation — 1 node vs. 2 nodes. ---
  std::printf("Activity 3: the same %d ranks placed on 1 vs. 2 nodes "
              "(aggregate memory bandwidth)\n\n",
              32);
  Table a;
  a.set_header({"engine", "32 ranks / 1 node", "32 ranks / 2 nodes",
                "2-node gain"});
  a.set_alignment({Align::kLeft});
  const auto two_nodes = pm::MachineConfig::monsoon_like(2);
  for (const auto engine : {m4::Engine::kRTree, m4::Engine::kBruteForce}) {
    const double t1 =
        run_config(32, engine, points, queries, one_node);
    const double t2 =
        run_config(32, engine, points, queries, two_nodes);
    a.add_row({engine == m4::Engine::kRTree ? "R-tree (memory-bound)"
                                            : "brute force (compute-bound)",
               seconds(t1), seconds(t2), fixed(t1 / t2, 2) + "x"});
  }
  std::printf("%s", a.render().c_str());
  std::printf("(the memory-bound R-tree gains from the second node's "
              "bandwidth; the\n compute-bound brute force does not — "
              "memory bandwidth is the key resource)\n\n");

  // --- Bonus: the quad-tree alternative the paper cites. ---
  std::printf("Index alternatives at 16 ranks:\n\n");
  Table q;
  q.set_header({"engine", "sim time", "entries checked"});
  q.set_alignment({Align::kLeft});
  for (const auto engine : {m4::Engine::kBruteForce, m4::Engine::kRTree,
                            m4::Engine::kQuadTree, m4::Engine::kKdTree}) {
    m4::Result r;
    run_config(16, engine, points, queries, one_node, &r);
    q.add_row({engine == m4::Engine::kBruteForce ? "brute force"
               : engine == m4::Engine::kRTree    ? "R-tree"
               : engine == m4::Engine::kQuadTree ? "quad-tree"
                                                 : "k-d tree",
               seconds(r.sim_time), count(r.entries_checked)});
  }
  std::printf("%s", q.render().c_str());
  return 0;
}
