// Fault-injection sweep: drop probability vs. send_reliable retry budget.
//
// Every worker rank pushes a fixed stream of reliable messages to rank 0
// while the injector drops each user p2p frame with probability P.  The
// sweep shows two expected shapes (EXPERIMENTS.md):
//   - the success region grows with the retry budget: budget K survives a
//     drop probability of roughly P < 1 - (1/K)^(1/K) per frame, so the
//     "FAILED" cells retreat to the right as K rises;
//   - recovery is not free: simulated completion time grows with the
//     injected drop rate (each drop costs one ack timeout + retransmit).
#include <cstdio>
#include <string>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/error.hpp"
#include "minimpi/runtime.hpp"
#include "support/format.hpp"

namespace mpi = dipdc::minimpi;
using namespace dipdc::support;

namespace {

constexpr int kRanks = 4;
constexpr int kMessagesPerWorker = 32;

struct Cell {
  bool ok = false;
  mpi::CommStats stats{};
  double sim_time = 0.0;
  std::string error;
};

Cell run_cell(double drop_prob, int retry_budget) {
  mpi::RuntimeOptions opts;
  opts.faults.seed = 42;
  opts.faults.drop_prob = drop_prob;
  opts.reliable.max_retries = retry_budget;

  Cell cell;
  try {
    const auto result = mpi::run(
        kRanks,
        [](mpi::Comm& comm) {
          if (comm.rank() == 0) {
            // Round-robin over the workers so the ack streams interleave.
            for (int i = 0; i < kMessagesPerWorker; ++i) {
              for (int src = 1; src < comm.size(); ++src) {
                const int v = comm.recv_reliable_value<int>(src, 3);
                if (v != src * 10000 + i) {
                  throw mpi::MpiError("payload corrupted in transit");
                }
              }
            }
          } else {
            for (int i = 0; i < kMessagesPerWorker; ++i) {
              comm.send_reliable_value(comm.rank() * 10000 + i, 0, 3);
            }
          }
        },
        opts);
    cell.ok = true;
    cell.stats = result.total_stats();
    cell.sim_time = result.max_sim_time();
  } catch (const std::exception& e) {
    cell.error = e.what();
  }
  return cell;
}

}  // namespace

int main() {
  const std::vector<double> drops = {0.0, 0.05, 0.1, 0.2, 0.4};
  const std::vector<int> budgets = {0, 1, 2, 4, 8};

  std::printf("Reliable delivery under injected loss: %d ranks, %d reliable "
              "messages per worker, fault seed 42\n\n",
              kRanks, kMessagesPerWorker);
  std::printf("%6s %7s %8s %8s %9s %7s %10s  %s\n", "drop", "budget",
              "outcome", "drops", "retries", "timeouts", "dups-filt",
              "max sim time");
  for (const int budget : budgets) {
    for (const double drop : drops) {
      const Cell cell = run_cell(drop, budget);
      if (cell.ok) {
        std::printf("%6.2f %7d %8s %8llu %9llu %7llu %10llu  %s\n", drop,
                    budget, "ok",
                    static_cast<unsigned long long>(cell.stats.fault_drops),
                    static_cast<unsigned long long>(
                        cell.stats.reliable_retries),
                    static_cast<unsigned long long>(
                        cell.stats.reliable_timeouts),
                    static_cast<unsigned long long>(
                        cell.stats.reliable_duplicates),
                    seconds(cell.sim_time).c_str());
      } else {
        std::printf("%6.2f %7d %8s %8s %9s %7s %10s  -\n", drop, budget,
                    "FAILED", "-", "-", "-", "-");
      }
    }
    std::printf("\n");
  }
  std::printf("Reading the table: a cell fails when some frame exhausts its "
              "retry budget;\nlarger budgets push failures to higher drop "
              "rates, and recovered runs pay for\neach drop with one "
              "acknowledgement timeout of simulated time.\n");
  return 0;
}
