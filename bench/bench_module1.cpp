// Module 1 experiments (paper §III-B): ping-pong latency/bandwidth,
// ring circulation, the blocking-send deadlock, and the directed vs.
// MPI_ANY_SOURCE random-communication comparison.
#include <cstdio>
#include <string>
#include <vector>

#include "minimpi/error.hpp"
#include "minimpi/runtime.hpp"
#include "modules/comm/module1.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m1 = dipdc::modules::comm1;
using namespace dipdc::support;

int main() {
  // --- Activity 1: ping-pong across message sizes. ---
  std::printf("Activity 1: ping-pong (simulated time, intra-node "
              "latency 0.8us, 20 GB/s)\n\n");
  Table pp;
  pp.set_header({"message size", "mean one-way latency",
                 "effective bandwidth"});
  for (const std::size_t size :
       {0u, 64u, 1024u, 65536u, 1048576u, 16777216u}) {
    m1::PingPongResult r;
    mpi::run(2, [&](mpi::Comm& comm) {
      const auto res = m1::ping_pong(comm, 50, size);
      if (comm.rank() == 0) r = res;
    });
    const double bw = size > 0 ? static_cast<double>(size) / r.mean_one_way
                               : 0.0;
    pp.add_row({bytes(size), seconds(r.mean_one_way),
                size > 0 ? bytes(static_cast<std::uint64_t>(bw)) + "/s"
                         : "-"});
  }
  std::printf("%s\n", pp.render().c_str());

  // --- Activity 2: ring, blocking vs. non-blocking, and the deadlock. ---
  std::printf("Activity 2: communication in a ring (8 ranks, 64 rounds)\n\n");
  Table ring;
  ring.set_header({"variant", "protocol", "outcome", "sim time"});
  ring.set_alignment({Align::kLeft, Align::kLeft, Align::kLeft});
  for (const bool rendezvous : {false, true}) {
    mpi::RuntimeOptions opts;
    if (rendezvous) opts.eager_threshold = 0;
    const char* proto = rendezvous ? "rendezvous (no buffering)" : "eager";
    // Blocking send-then-recv.
    try {
      double t = 0.0;
      mpi::run(
          8,
          [&](mpi::Comm& comm) {
            const auto r = m1::ring_blocking(comm, 64);
            if (comm.rank() == 0) t = r.sim_elapsed;
          },
          opts);
      ring.add_row({"blocking send->recv", proto, "completed", seconds(t)});
    } catch (const mpi::DeadlockError&) {
      ring.add_row({"blocking send->recv", proto, "DEADLOCK detected", "-"});
    }
    // Non-blocking.
    double t = 0.0;
    mpi::run(
        8,
        [&](mpi::Comm& comm) {
          const auto r = m1::ring_nonblocking(comm, 64);
          if (comm.rank() == 0) t = r.sim_elapsed;
        },
        opts);
    ring.add_row({"isend->recv->wait", proto, "completed", seconds(t)});
  }
  std::printf("%s", ring.render().c_str());
  std::printf("(the blocking ring only works while the eager protocol "
              "buffers sends —\n exactly the Module 1 deadlock lesson)\n\n");

  // --- Activity 3: random communication, directed vs. ANY_SOURCE. ---
  std::printf("Activity 3: random communication, 16 ranks x 64 messages\n\n");
  Table rc;
  rc.set_header({"variant", "messages", "p2p volume", "sim time (max rank)",
                 "payloads ok"});
  rc.set_alignment({Align::kLeft});
  for (const bool any_source : {false, true}) {
    std::uint64_t msgs = 0;
    bool ok = true;
    double t = 0.0;
    const auto run = mpi::run(16, [&](mpi::Comm& comm) {
      const auto r = any_source
                         ? m1::random_comm_any_source(comm, 64, 2024)
                         : m1::random_comm_directed(comm, 64, 2024);
      ok = ok && r.payloads_consistent;
      t = std::max(t, r.sim_elapsed);
      if (comm.rank() == 0) msgs = 0;
    });
    msgs = run.total_stats().p2p_messages_sent;
    rc.add_row({any_source ? "MPI_ANY_SOURCE" : "directed (counts first)",
                std::to_string(msgs),
                bytes(run.total_stats().p2p_bytes_sent), seconds(t),
                ok ? "yes" : "NO"});
  }
  std::printf("%s", rc.render().c_str());
  std::printf(
      "(both move the same messages; the directed variant must first\n"
      " circulate per-pair counts, the ANY_SOURCE variant is simpler to\n"
      " program — the programmability/efficiency reflection of Module 1)\n");
  return 0;
}
