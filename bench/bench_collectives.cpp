// Wall-clock microbenchmarks of the minimpi collectives, via
// google-benchmark.  Every collective runs in two configurations:
//
//   * baseline — the pre-fast-path transport (no pooling, no zero-copy, no
//     inline storage) with every collective forced onto its classic
//     algorithm; this reproduces the seed implementation's behaviour.
//   * tuned — the defaults: pooled envelopes/buffers, zero-copy staging,
//     and kAuto algorithm selection (tree / recursive-doubling / ring).
//
// Simulated results are identical between the two (the determinism tests
// pin that); what differs is real time, which is what this binary measures.
// The `bench_json` target runs it with JSON output into
// BENCH_collectives.json at the repository root.
//
// A third axis measures the transport backends: bcast (latency) and
// allreduce (bandwidth) additionally run with ranks as forked shm
// processes and as TCP loopback peers.  Simulated results stay
// bit-identical (minimpi_backend_test pins that); the rows quantify the
// real-time cost of true serialization + a process/kernel round trip per
// envelope versus the in-process threads mailboxes.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/runtime.hpp"

namespace mpi = dipdc::minimpi;

namespace {

/// Collective invocations per rank per mpi::run, to amortize the thread
/// spawn/join cost of one world over several measured operations.
constexpr int kInner = 4;

mpi::RuntimeOptions baseline_options() {
  mpi::RuntimeOptions opts;
  opts.transport.pooling = false;
  opts.transport.zero_copy = false;
  opts.transport.inline_threshold = 0;
  opts.collectives.scatter = mpi::CollectiveAlgorithm::kClassic;
  opts.collectives.gather = mpi::CollectiveAlgorithm::kClassic;
  opts.collectives.allreduce = mpi::CollectiveAlgorithm::kClassic;
  opts.collectives.allgather = mpi::CollectiveAlgorithm::kClassic;
  return opts;
}

mpi::RuntimeOptions tuned_options() { return {}; }

mpi::RuntimeOptions backend_options(mpi::BackendKind kind) {
  mpi::RuntimeOptions opts;
  opts.backend.kind = kind;
  return opts;
}

void run_bcast(benchmark::State& state, const mpi::RuntimeOptions& opts) {
  const int p = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    mpi::run(
        p,
        [bytes](mpi::Comm& comm) {
          std::vector<std::byte> buf(bytes, std::byte{1});
          for (int i = 0; i < kInner; ++i) {
            comm.bcast(std::span<std::byte>(buf), 0);
          }
          benchmark::DoNotOptimize(buf.data());
        },
        opts);
  }
  state.SetBytesProcessed(state.iterations() * kInner *
                          static_cast<std::int64_t>(bytes));
}

void run_scatterv(benchmark::State& state, const mpi::RuntimeOptions& opts) {
  const int p = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    mpi::run(
        p,
        [p, bytes](mpi::Comm& comm) {
          const auto np = static_cast<std::size_t>(p);
          const std::size_t chunk = bytes / np;
          std::vector<std::size_t> counts(np, chunk);
          std::vector<std::size_t> displs(np);
          for (std::size_t r = 0; r < np; ++r) displs[r] = r * chunk;
          std::vector<std::byte> send;
          if (comm.rank() == 0) send.assign(chunk * np, std::byte{1});
          std::vector<std::byte> recv(chunk);
          for (int i = 0; i < kInner; ++i) {
            comm.scatterv(std::span<const std::byte>(send),
                          std::span<const std::size_t>(counts),
                          std::span<const std::size_t>(displs),
                          std::span<std::byte>(recv), 0);
          }
          benchmark::DoNotOptimize(recv.data());
        },
        opts);
  }
  state.SetBytesProcessed(state.iterations() * kInner *
                          static_cast<std::int64_t>(bytes));
}

void run_gatherv(benchmark::State& state, const mpi::RuntimeOptions& opts) {
  const int p = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    mpi::run(
        p,
        [p, bytes](mpi::Comm& comm) {
          const auto np = static_cast<std::size_t>(p);
          const std::size_t chunk = bytes / np;
          std::vector<std::size_t> counts(np, chunk);
          std::vector<std::size_t> displs(np);
          for (std::size_t r = 0; r < np; ++r) displs[r] = r * chunk;
          std::vector<std::byte> send(chunk, std::byte{1});
          std::vector<std::byte> recv;
          if (comm.rank() == 0) recv.assign(chunk * np, std::byte{});
          for (int i = 0; i < kInner; ++i) {
            comm.gatherv(std::span<const std::byte>(send),
                         std::span<const std::size_t>(counts),
                         std::span<const std::size_t>(displs),
                         std::span<std::byte>(recv), 0);
          }
          benchmark::DoNotOptimize(recv.data());
        },
        opts);
  }
  state.SetBytesProcessed(state.iterations() * kInner *
                          static_cast<std::int64_t>(bytes));
}

void run_allreduce(benchmark::State& state, const mpi::RuntimeOptions& opts) {
  const int p = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    mpi::run(
        p,
        [bytes](mpi::Comm& comm) {
          const std::size_t n = bytes / sizeof(double);
          std::vector<double> send(n, 1.0 + comm.rank());
          std::vector<double> recv(n);
          for (int i = 0; i < kInner; ++i) {
            comm.allreduce(std::span<const double>(send),
                           std::span<double>(recv), mpi::ops::Sum{});
          }
          benchmark::DoNotOptimize(recv.data());
        },
        opts);
  }
  state.SetBytesProcessed(state.iterations() * kInner *
                          static_cast<std::int64_t>(bytes));
}

void run_alltoallv(benchmark::State& state, const mpi::RuntimeOptions& opts) {
  const int p = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    mpi::run(
        p,
        [p, bytes](mpi::Comm& comm) {
          const auto np = static_cast<std::size_t>(p);
          const std::size_t chunk = bytes / np;
          std::vector<std::size_t> counts(np, chunk);
          std::vector<std::size_t> displs(np);
          for (std::size_t r = 0; r < np; ++r) displs[r] = r * chunk;
          std::vector<std::byte> send(chunk * np, std::byte{1});
          std::vector<std::byte> recv(chunk * np);
          for (int i = 0; i < kInner; ++i) {
            comm.alltoallv(std::span<const std::byte>(send),
                           std::span<const std::size_t>(counts),
                           std::span<const std::size_t>(displs),
                           std::span<std::byte>(recv),
                           std::span<const std::size_t>(counts),
                           std::span<const std::size_t>(displs));
          }
          benchmark::DoNotOptimize(recv.data());
        },
        opts);
  }
  state.SetBytesProcessed(state.iterations() * kInner *
                          static_cast<std::int64_t>(bytes));
}

void BM_BcastBaseline(benchmark::State& s) { run_bcast(s, baseline_options()); }
void BM_BcastTuned(benchmark::State& s) { run_bcast(s, tuned_options()); }
void BM_ScattervBaseline(benchmark::State& s) {
  run_scatterv(s, baseline_options());
}
void BM_ScattervTuned(benchmark::State& s) { run_scatterv(s, tuned_options()); }
void BM_GathervBaseline(benchmark::State& s) {
  run_gatherv(s, baseline_options());
}
void BM_GathervTuned(benchmark::State& s) { run_gatherv(s, tuned_options()); }
void BM_AllreduceBaseline(benchmark::State& s) {
  run_allreduce(s, baseline_options());
}
void BM_AllreduceTuned(benchmark::State& s) {
  run_allreduce(s, tuned_options());
}
void BM_AlltoallvBaseline(benchmark::State& s) {
  run_alltoallv(s, baseline_options());
}
void BM_AlltoallvTuned(benchmark::State& s) {
  run_alltoallv(s, tuned_options());
}

// Per-backend rows.  BM_*Threads repeats the default configuration on the
// backend grid so all three transports share directly comparable points
// (the full-grid threads sweep is the Tuned series above).
void BM_BcastThreads(benchmark::State& s) {
  run_bcast(s, backend_options(mpi::BackendKind::kThreads));
}
void BM_AllreduceThreads(benchmark::State& s) {
  run_allreduce(s, backend_options(mpi::BackendKind::kThreads));
}
void BM_BcastShm(benchmark::State& s) {
  run_bcast(s, backend_options(mpi::BackendKind::kShm));
}
void BM_BcastTcp(benchmark::State& s) {
  run_bcast(s, backend_options(mpi::BackendKind::kTcp));
}
void BM_AllreduceShm(benchmark::State& s) {
  run_allreduce(s, backend_options(mpi::BackendKind::kShm));
}
void BM_AllreduceTcp(benchmark::State& s) {
  run_allreduce(s, backend_options(mpi::BackendKind::kTcp));
}

const std::vector<std::vector<std::int64_t>> kGrid = {
    {2, 4, 8, 16},                      // ranks
    {1 << 10, 64 << 10, 4 << 20},       // payload bytes
};

// Smaller grid for the non-threads backends: every mpi::run pays a real
// fork (shm) or socket-mesh setup (tcp), so the sweep stays focused on
// one latency point and one bandwidth point per rank count.
const std::vector<std::vector<std::int64_t>> kBackendGrid = {
    {4, 8},                             // ranks
    {1 << 10, 1 << 20},                 // payload bytes
};

}  // namespace

BENCHMARK(BM_BcastBaseline)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_BcastTuned)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_ScattervBaseline)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_ScattervTuned)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_GathervBaseline)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_GathervTuned)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_AllreduceBaseline)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_AllreduceTuned)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_AlltoallvBaseline)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_AlltoallvTuned)->ArgsProduct(kGrid)->UseRealTime();
BENCHMARK(BM_BcastThreads)->ArgsProduct(kBackendGrid)->UseRealTime();
BENCHMARK(BM_AllreduceThreads)->ArgsProduct(kBackendGrid)->UseRealTime();
BENCHMARK(BM_BcastShm)->ArgsProduct(kBackendGrid)->UseRealTime();
BENCHMARK(BM_BcastTcp)->ArgsProduct(kBackendGrid)->UseRealTime();
BENCHMARK(BM_AllreduceShm)->ArgsProduct(kBackendGrid)->UseRealTime();
BENCHMARK(BM_AllreduceTcp)->ArgsProduct(kBackendGrid)->UseRealTime();

BENCHMARK_MAIN();
