// Module 5 experiments (paper §III-F): k-means time split between
// computation and communication as a function of k, the two communication
// strategies' volumes, and the node-count question at low vs. high k.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dataio/dataset.hpp"
#include "kernels/dispatch.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/trace.hpp"
#include "modules/kmeans/module5.hpp"
#include "obs/critical_path.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m5 = dipdc::modules::kmeans;
namespace io = dipdc::dataio;
namespace pm = dipdc::perfmodel;
namespace ker = dipdc::kernels;
using namespace dipdc::support;

namespace {

m5::Result run_kmeans(int ranks, const io::Dataset& data, std::size_t k,
                      m5::Strategy strategy,
                      const pm::MachineConfig& machine, int iterations = 20,
                      double* cp_comm_share = nullptr) {
  mpi::RuntimeOptions opts;
  opts.machine = machine;
  opts.record_trace = cp_comm_share != nullptr;
  m5::Config cfg;
  cfg.k = k;
  cfg.strategy = strategy;
  cfg.max_iterations = iterations;
  cfg.tolerance = -1.0;  // fixed iteration count for fair phase splits
  m5::Result out;
  const mpi::RunResult rr = mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        const auto r = m5::distributed(
            comm, comm.rank() == 0 ? data : io::Dataset{}, cfg);
        if (comm.rank() == 0) out = r;
      },
      opts);
  if (cp_comm_share != nullptr) {
    *cp_comm_share =
        dipdc::obs::critical_path(mpi::make_trace(rr)).comm_share();
  }
  return out;
}

}  // namespace

int main() {
  const auto dataset =
      io::generate_clusters(100000, 2, 16, 1.0, 0.0, 100.0, 555).data;
  const auto machine = pm::MachineConfig::monsoon_like(2);
  const int ranks = 32;

  // --- Compute vs. communication as a function of k. ---
  std::printf("k-means, %zu 2-D points, %d ranks on 2 nodes, 20 "
              "iterations, weighted-means strategy\n\n",
              dataset.size(), ranks);
  Table t;
  t.set_header({"k", "total sim time", "compute share", "comm share",
                "crit-path comm", "dominated by"});
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    double cp_share = 0.0;
    const auto r = run_kmeans(ranks, dataset, k,
                              m5::Strategy::kWeightedMeans, machine, 20,
                              &cp_share);
    const double total = r.compute_time + r.comm_time;
    const double cshare = r.compute_time / total;
    t.add_row({std::to_string(k), seconds(r.sim_time), percent(cshare),
               percent(1.0 - cshare), percent(cp_share),
               cshare > 0.5 ? "computation" : "communication"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(shape: low k -> communication dominates; large k -> "
              "computation dominates —\n the module's headline result)\n\n");

  // --- The two communication strategies. ---
  std::printf("Communication strategies, k=8 (per-iteration loop "
              "volume over all ranks):\n\n");
  Table s;
  s.set_header({"strategy", "volume/iteration", "comm time",
                "iterations", "inertia"});
  s.set_alignment({Align::kLeft});
  for (const auto strategy :
       {m5::Strategy::kExplicitAssignments, m5::Strategy::kWeightedMeans}) {
    const auto r = run_kmeans(ranks, dataset, 8, strategy, machine);
    s.add_row({strategy == m5::Strategy::kExplicitAssignments
                   ? "A: explicit assignments (O(N))"
                   : "B: weighted means (O(k*d))",
               bytes(r.comm_bytes / static_cast<std::uint64_t>(r.iterations)),
               seconds(r.comm_time), std::to_string(r.iterations),
               fixed(r.inertia, 0)});
  }
  std::printf("%s", s.render().c_str());
  std::printf("(both converge identically; option B ships orders of "
              "magnitude less data)\n\n");

  // --- Node-count question: is spreading out worth it? ---
  std::printf("Node-count sweep at %d ranks (weighted means):\n\n", ranks);
  Table n;
  n.set_header({"k", "1 node", "2 nodes", "4 nodes", "best"});
  for (const std::size_t k : {2u, 256u}) {
    std::vector<double> times;
    for (const int nodes : {1, 2, 4}) {
      times.push_back(run_kmeans(ranks, dataset, k,
                                 m5::Strategy::kWeightedMeans,
                                 pm::MachineConfig::monsoon_like(nodes))
                          .sim_time);
    }
    const std::size_t best = static_cast<std::size_t>(
        std::min_element(times.begin(), times.end()) - times.begin());
    n.add_row({std::to_string(k), seconds(times[0]), seconds(times[1]),
               seconds(times[2]),
               std::to_string(1 << best) + " node(s)"});
  }
  std::printf("%s", n.render().c_str());
  std::printf("(at low k the work is communication-dominated, so paying "
              "inter-node latency for\n extra bandwidth does not help — "
              "\"using multiple compute nodes is not\n advantageous when "
              "k is low\", paper §III-F)\n\n");

  // --- Native kernel timing: the dispatched scalar vs. SIMD assignment
  //     and update kernels, end to end through lloyd_sequential (wall
  //     clock, not simulated).  16-D points so the vectorized inner
  //     product has lanes to fill — the module's 2-D teaching dataset is
  //     all tail for any kernel.
  {
    const auto rich =
        io::generate_clusters(20000, 16, 16, 1.0, 0.0, 100.0, 556).data;
    std::printf("Native Lloyd timing: %zu 16-D points, 10 iterations, "
                "sequential (wall clock)\n\n",
                rich.size());
    Table w;
    w.set_header({"k", "scalar", "simd", "speedup"});
    std::vector<ker::Policy> policies = {ker::Policy::kScalar};
    if (ker::simd_supported()) policies.push_back(ker::Policy::kSimd);
    for (const std::size_t k : {16u, 64u}) {
      std::vector<std::string> row = {std::to_string(k)};
      double t_scalar = 0.0;
      for (const ker::Policy policy : policies) {
        m5::Config cfg;
        cfg.k = k;
        cfg.max_iterations = 10;
        cfg.tolerance = -1.0;  // fixed iteration count either way
        cfg.kernel = policy;
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
          Stopwatch sw;
          (void)m5::lloyd_sequential(rich, cfg);
          best = std::min(best, sw.elapsed());
        }
        if (policy == ker::Policy::kScalar) t_scalar = best;
        row.push_back(seconds(best));
        if (policy == ker::Policy::kSimd) {
          row.push_back(fixed(t_scalar / best, 2) + "x");
        }
      }
      while (row.size() < 4) row.push_back("n/a");  // no AVX2 on this host
      w.add_row(row);
    }
    std::printf("%s", w.render().c_str());
    std::printf("(same centroids, inertia and iteration count either way — "
                "the canonical\n accumulation contract, DESIGN.md §12; "
                "bench_kernels has the per-kernel view)\n");
  }
  return 0;
}
