// Streaming out-of-core sweep: modules 2 and 3 in-core vs streamed, with
// the read / communicate / compute rotation's overlap on and off.
//
// Every run records a trace and the reported communication numbers come
// from obs::critical_path over the simulated timeline — NOT from parsing
// dipdc-trace output (which rounds to one decimal).  The headline row of
// the module 2 sweep is the overlap experiment the streaming handbook
// chapter (docs/handbook/streaming.md) is built around: the same chunks
// move through the same nonblocking broadcasts either issue-and-wait
// (overlap off) or hidden behind the previous chunk's compute (overlap
// on), and the critical-path comm share drops by `m2_overlap_comm_drop`
// (>= 2x on the shipped configuration).
//
// Everything this bench measures is *simulated* time, so the pinned
// metrics in the JSON are deterministic: the same binary on any machine,
// any backend, produces bit-identical values.  CI exploits that —
// tools/bench_diff.py compares a --quick run against the committed
// BENCH_streaming.json exactly (see .github/workflows/ci.yml, perf-smoke).
//
// Usage: bench_streaming [--quick] [--out=FILE]
//   --quick   headline configuration only (the CI perf-smoke leg)
//   --out     also write the results as JSON (BENCH_streaming.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "dataio/chunk.hpp"
#include "dataio/dataset.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/trace.hpp"
#include "modules/distmatrix/module2.hpp"
#include "modules/sort/module3.hpp"
#include "obs/critical_path.hpp"

namespace mpi = dipdc::minimpi;
namespace io = dipdc::dataio;
namespace obs = dipdc::obs;
namespace m2 = dipdc::modules::distmatrix;
namespace m3 = dipdc::modules::distsort;

namespace {

// The headline configuration runs in BOTH full and quick modes with
// identical parameters, so the committed full-run JSON and the CI quick
// run agree exactly on every pinned metric.
constexpr int kHeadlineRanks = 8;
constexpr std::size_t kM2Rows = 1024;
constexpr std::size_t kM2Dim = 90;
constexpr std::size_t kHeadlineChunkRows = 128;  // 8 chunks
constexpr std::size_t kM3Keys = 4000;
constexpr std::size_t kM3ChunkRows = 500;  // 8 chunks

/// Sentinel for "comm share dropped all the way to zero" (a ratio would
/// divide by zero; JSON has no infinity).
constexpr double kDropToZero = 1e6;

struct TempPath {
  explicit TempPath(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempPath() { std::remove(path.c_str()); }
  std::string path;
};

/// One traced run distilled: the slowest rank's simulated clock plus the
/// critical-path attribution of the simulated timeline.
struct RunMetrics {
  double sim_time = 0.0;    // max simulated clock across ranks
  double makespan = 0.0;    // critical-path makespan
  double comm_s = 0.0;      // seconds attributed to communication
  double comm_share = 0.0;  // comm_s / makespan
};

RunMetrics analyze(const mpi::RunResult& rr) {
  RunMetrics m;
  m.sim_time = rr.max_sim_time();
  const obs::Trace trace = mpi::make_trace(rr);
  const obs::CriticalPath cp = obs::critical_path(trace);
  m.makespan = cp.makespan;
  m.comm_s = cp.comm_seconds();
  m.comm_share = cp.comm_share();
  return m;
}

enum class Mode { kInCore, kStream };

const char* mode_name(Mode m) {
  return m == Mode::kInCore ? "incore" : "stream";
}

struct M2Row {
  int ranks = 0;
  std::size_t chunk_rows = 0;  // 0 for in-core
  Mode mode = Mode::kInCore;
  bool overlap = false;
  RunMetrics rm;
  double checksum = 0.0;
};

M2Row run_m2(int ranks, const io::Dataset& d, const std::string& chunk_path,
             std::size_t chunk_rows, Mode mode, bool overlap) {
  M2Row row;
  row.ranks = ranks;
  row.chunk_rows = mode == Mode::kStream ? chunk_rows : 0;
  row.mode = mode;
  row.overlap = overlap;
  mpi::RuntimeOptions opts;
  opts.record_trace = true;
  const m2::Config cfg;  // base configuration: block rows, row-wise
  const mpi::RunResult rr = mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        const m2::Result res =
            mode == Mode::kInCore
                ? m2::run_distributed(comm, d, cfg)
                : m2::run_streamed(comm, chunk_path, cfg, {overlap});
        if (comm.rank() == 0) row.checksum = res.checksum;
      },
      opts);
  row.rm = analyze(rr);
  return row;
}

struct M3Row {
  int ranks = 0;
  Mode mode = Mode::kInCore;
  bool overlap = false;
  RunMetrics rm;
  std::size_t total_elements = 0;
  bool sorted = false;
  /// Concatenation of all ranks' sorted buckets (collected outside the
  /// traced world so the comparison adds no communication events).
  std::vector<double> global;
};

M3Row run_m3(int ranks, const io::Dataset& keys, const std::string& chunk_path,
             Mode mode, bool overlap) {
  M3Row row;
  row.ranks = ranks;
  row.mode = mode;
  row.overlap = overlap;
  mpi::RuntimeOptions opts;
  opts.record_trace = true;
  const m3::Config cfg;  // kEqualWidth over [0, 1)
  std::vector<std::vector<double>> buckets(static_cast<std::size_t>(ranks));
  const auto shards =
      io::block_partition(keys.size(), static_cast<std::size_t>(ranks));
  const mpi::RunResult rr = mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        m3::Result res;
        if (mode == Mode::kInCore) {
          const auto [b, e] = shards[r];
          std::vector<double> local(keys.values().data() + b,
                                    keys.values().data() + e);
          res = m3::distributed_bucket_sort(comm, local, cfg);
          buckets[r] = std::move(local);
        } else {
          res = m3::streamed_bucket_sort(comm, chunk_path, cfg, buckets[r],
                                         {overlap});
        }
        if (comm.rank() == 0) {
          row.total_elements = res.total_elements;
          row.sorted = res.globally_sorted;
        }
      },
      opts);
  row.rm = analyze(rr);
  for (const std::vector<double>& b : buckets) {
    row.global.insert(row.global.end(), b.begin(), b.end());
  }
  return row;
}

std::string g6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Exact round-trip formatting for the pinned (deterministic) metrics.
std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void print_m2(const M2Row& r) {
  std::printf("%6d %7s %10zu %8s %14.6g %14.6g %9.4f%%\n", r.ranks,
              mode_name(r.mode), r.chunk_rows,
              r.mode == Mode::kStream ? (r.overlap ? "on" : "off") : "-",
              r.rm.sim_time * 1e6, r.rm.comm_s * 1e6,
              100.0 * r.rm.comm_share);
}

void print_m3(const M3Row& r) {
  std::printf("%6d %7s %8s %14.6g %14.6g %9.4f%%  %s\n", r.ranks,
              mode_name(r.mode),
              r.mode == Mode::kStream ? (r.overlap ? "on" : "off") : "-",
              r.rm.sim_time * 1e6, r.rm.comm_s * 1e6,
              100.0 * r.rm.comm_share, r.sorted ? "sorted" : "UNSORTED");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  // ---- Module 2: distance matrix, in-core vs streamed -------------------
  const io::Dataset d = io::generate_uniform(kM2Rows, kM2Dim, 0.0, 1.0, 11);
  TempPath m2_headline("dipdc_bench_m2_headline.bin");
  io::dataset_to_chunks(d, m2_headline.path, kHeadlineChunkRows);

  std::printf("Module 2 distance matrix, %zu x %zu-d points "
              "(simulated time; comm = critical-path attribution)\n\n",
              kM2Rows, kM2Dim);
  std::printf("%6s %7s %10s %8s %14s %14s %10s\n", "ranks", "mode",
              "chunk_rows", "overlap", "sim us", "comm us", "comm share");

  std::vector<M2Row> m2_rows;
  const std::vector<int> rank_levels =
      quick ? std::vector<int>{kHeadlineRanks} : std::vector<int>{2, 4, 8};
  const std::vector<std::size_t> chunk_levels =
      quick ? std::vector<std::size_t>{kHeadlineChunkRows}
            : std::vector<std::size_t>{64, kHeadlineChunkRows, 256};
  for (const int ranks : rank_levels) {
    m2_rows.push_back(run_m2(ranks, d, "", 0, Mode::kInCore, false));
    print_m2(m2_rows.back());
    for (const std::size_t chunk_rows : chunk_levels) {
      TempPath chunks("dipdc_bench_m2_" + std::to_string(chunk_rows) +
                      ".bin");
      const std::string& path = chunk_rows == kHeadlineChunkRows
                                    ? m2_headline.path
                                    : chunks.path;
      if (chunk_rows != kHeadlineChunkRows) {
        io::dataset_to_chunks(d, path, chunk_rows);
      }
      for (const bool overlap : {false, true}) {
        m2_rows.push_back(
            run_m2(ranks, d, path, chunk_rows, Mode::kStream, overlap));
        print_m2(m2_rows.back());
      }
    }
  }

  // Headline pair: streamed at the headline configuration, overlap off vs
  // on.  Same chunks, same collectives; only the issue/wait placement
  // differs — the share of the critical path spent communicating is the
  // price of not overlapping.
  const auto find_m2 = [&](Mode mode, bool overlap) -> const M2Row& {
    for (const M2Row& r : m2_rows) {
      if (r.ranks == kHeadlineRanks && r.mode == mode &&
          (mode == Mode::kInCore ||
           (r.chunk_rows == kHeadlineChunkRows && r.overlap == overlap))) {
        return r;
      }
    }
    std::fprintf(stderr, "FATAL: headline configuration missing\n");
    std::abort();
  };
  const M2Row& m2_incore = find_m2(Mode::kInCore, false);
  const M2Row& m2_off = find_m2(Mode::kStream, false);
  const M2Row& m2_on = find_m2(Mode::kStream, true);
  const double drop = m2_on.rm.comm_share > 0.0
                          ? m2_off.rm.comm_share / m2_on.rm.comm_share
                          : (m2_off.rm.comm_share > 0.0 ? kDropToZero : 1.0);
  const bool m2_checksums_equal = m2_incore.checksum == m2_off.checksum &&
                                  m2_incore.checksum == m2_on.checksum;
  std::printf("\nheadline (%d ranks, chunk_rows=%zu): overlap cuts the "
              "critical-path comm share\n%.4f%% -> %.4f%% (%.2fx); "
              "checksums in-core vs streamed %s\n",
              kHeadlineRanks, kHeadlineChunkRows,
              100.0 * m2_off.rm.comm_share, 100.0 * m2_on.rm.comm_share,
              drop, m2_checksums_equal ? "identical" : "DIFFER");
  if (!m2_checksums_equal) {
    std::fprintf(stderr, "FATAL: streamed checksum diverged from in-core\n");
    return 1;
  }

  // ---- Module 3: bucket sort, in-core vs streamed -----------------------
  const io::Dataset keys = io::generate_uniform(kM3Keys, 1, 0.0, 1.0, 7);
  TempPath m3_chunks("dipdc_bench_m3.bin");
  io::dataset_to_chunks(keys, m3_chunks.path, kM3ChunkRows);

  std::printf("\nModule 3 bucket sort, %zu keys (chunk_rows=%zu streamed)\n\n",
              kM3Keys, kM3ChunkRows);
  std::printf("%6s %7s %8s %14s %14s %10s\n", "ranks", "mode", "overlap",
              "sim us", "comm us", "comm share");
  std::vector<M3Row> m3_rows;
  const std::vector<int> m3_ranks =
      quick ? std::vector<int>{kHeadlineRanks} : std::vector<int>{4, 8};
  for (const int ranks : m3_ranks) {
    m3_rows.push_back(run_m3(ranks, keys, "", Mode::kInCore, false));
    print_m3(m3_rows.back());
    for (const bool overlap : {false, true}) {
      m3_rows.push_back(
          run_m3(ranks, keys, m3_chunks.path, Mode::kStream, overlap));
      print_m3(m3_rows.back());
    }
  }
  const auto find_m3 = [&](Mode mode, bool overlap) -> const M3Row& {
    for (const M3Row& r : m3_rows) {
      if (r.ranks == kHeadlineRanks && r.mode == mode &&
          (mode == Mode::kInCore || r.overlap == overlap)) {
        return r;
      }
    }
    std::fprintf(stderr, "FATAL: headline configuration missing\n");
    std::abort();
  };
  const M3Row& m3_incore = find_m3(Mode::kInCore, false);
  const M3Row& m3_on = find_m3(Mode::kStream, true);
  const M3Row& m3_off = find_m3(Mode::kStream, false);
  const bool m3_buckets_equal = m3_incore.global == m3_on.global &&
                                m3_incore.global == m3_off.global;
  std::printf("\nstreamed buckets vs in-core exchange: %s\n",
              m3_buckets_equal ? "bit-identical" : "DIFFER");
  if (!m3_buckets_equal || !m3_on.sorted || !m3_off.sorted) {
    std::fprintf(stderr, "FATAL: streamed sort diverged from in-core\n");
    return 1;
  }

  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"streaming\",\n");
    std::fprintf(f,
                 "  \"config\": {\"m2_rows\": %zu, \"m2_dim\": %zu, "
                 "\"m3_keys\": %zu, \"m3_chunk_rows\": %zu, "
                 "\"headline_ranks\": %d, \"headline_chunk_rows\": %zu, "
                 "\"quick\": %s},\n",
                 kM2Rows, kM2Dim, kM3Keys, kM3ChunkRows, kHeadlineRanks,
                 kHeadlineChunkRows, quick ? "true" : "false");
    std::fprintf(f, "  \"module2\": [\n");
    for (std::size_t i = 0; i < m2_rows.size(); ++i) {
      const M2Row& r = m2_rows[i];
      std::fprintf(f,
                   "    {\"ranks\": %d, \"mode\": \"%s\", \"chunk_rows\": "
                   "%zu, \"overlap\": %s, \"sim_time_s\": %s, "
                   "\"comm_s\": %s, \"comm_share\": %s}%s\n",
                   r.ranks, mode_name(r.mode), r.chunk_rows,
                   r.overlap ? "true" : "false", g6(r.rm.sim_time).c_str(),
                   g6(r.rm.comm_s).c_str(), g6(r.rm.comm_share).c_str(),
                   i + 1 < m2_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"module3\": [\n");
    for (std::size_t i = 0; i < m3_rows.size(); ++i) {
      const M3Row& r = m3_rows[i];
      std::fprintf(f,
                   "    {\"ranks\": %d, \"mode\": \"%s\", \"overlap\": %s, "
                   "\"sim_time_s\": %s, \"comm_s\": %s, \"comm_share\": "
                   "%s, \"total_elements\": %zu, \"sorted\": %s}%s\n",
                   r.ranks, mode_name(r.mode), r.overlap ? "true" : "false",
                   g6(r.rm.sim_time).c_str(), g6(r.rm.comm_s).c_str(),
                   g6(r.rm.comm_share).c_str(), r.total_elements,
                   r.sorted ? "true" : "false",
                   i + 1 < m3_rows.size() ? "," : "");
    }
    // Pinned metrics: all simulated, hence bit-identical on any machine
    // and backend.  bench_diff.py compares these exactly and requires
    // m2_overlap_comm_drop >= 2 (the PR's acceptance bar).
    std::fprintf(f, "  ],\n  \"pinned\": {\n");
    std::fprintf(f, "    \"m2_checksum\": %s,\n", g17(m2_on.checksum).c_str());
    std::fprintf(f, "    \"m2_sim_time_stream_overlap_s\": %s,\n",
                 g17(m2_on.rm.sim_time).c_str());
    std::fprintf(f, "    \"m2_comm_share_overlap\": %s,\n",
                 g17(m2_on.rm.comm_share).c_str());
    std::fprintf(f, "    \"m2_comm_share_no_overlap\": %s,\n",
                 g17(m2_off.rm.comm_share).c_str());
    std::fprintf(f, "    \"m2_overlap_comm_drop\": %s,\n", g17(drop).c_str());
    std::fprintf(f, "    \"m2_stream_matches_incore\": %s,\n",
                 m2_checksums_equal ? "true" : "false");
    std::fprintf(f, "    \"m3_sim_time_stream_overlap_s\": %s,\n",
                 g17(m3_on.rm.sim_time).c_str());
    std::fprintf(f, "    \"m3_total_elements\": %zu,\n",
                 m3_on.total_elements);
    std::fprintf(f, "    \"m3_stream_matches_incore\": %s\n",
                 m3_buckets_equal ? "true" : "false");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
  }
  return 0;
}
