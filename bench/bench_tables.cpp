// Reproduces the paper's Table I (student learning outcomes x modules,
// Bloom levels) and Table II (MPI primitive usage x modules).  Table II is
// not just printed from metadata: every module's reference solution runs
// under the instrumented runtime and the *measured* primitive usage is
// shown next to the paper's R/N markings, with a verdict per module that
// all Required primitives were actually invoked.
#include <cstdio>
#include <string>
#include <vector>

#include "dataio/dataset.hpp"
#include "eval/tables.hpp"
#include "minimpi/runtime.hpp"
#include "modules/comm/module1.hpp"
#include "modules/distmatrix/module2.hpp"
#include "modules/kmeans/module5.hpp"
#include "modules/rangequery/module4.hpp"
#include "modules/sort/module3.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace ev = dipdc::eval;
namespace mpi = dipdc::minimpi;
using namespace dipdc::support;

namespace {

void print_table1() {
  Table t("TABLE I: student learning outcomes per module "
          "(A-apply, E-evaluate, C-create)");
  t.set_header({"#", "Student Learning Outcome", "M1", "M2", "M3", "M4",
                "M5"});
  t.set_alignment({Align::kRight, Align::kLeft});
  int i = 0;
  for (const auto& row : ev::learning_outcomes()) {
    std::vector<std::string> cells{std::to_string(++i),
                                   std::string(row.description)};
    for (const auto level : row.levels) {
      cells.emplace_back(1, static_cast<char>(level));
    }
    t.add_row(std::move(cells));
  }
  std::printf("%s\n", t.render().c_str());
}

/// Runs module `m`'s reference solution on 4 ranks and returns aggregated
/// communication statistics.
mpi::CommStats run_module(int m) {
  using dipdc::dataio::Dataset;
  mpi::RunResult result;
  switch (m) {
    case 0:
      result = mpi::run(4, [](mpi::Comm& comm) {
        dipdc::modules::comm1::ping_pong(comm, 10, 256);
        dipdc::modules::comm1::ring_nonblocking(comm, comm.size());
        dipdc::modules::comm1::random_comm_directed(comm, 6, 1);
        dipdc::modules::comm1::random_comm_any_source(comm, 6, 2);
      });
      break;
    case 1: {
      const auto d = dipdc::dataio::generate_uniform(128, 16, 0.0, 1.0, 3);
      result = mpi::run(4, [&](mpi::Comm& comm) {
        dipdc::modules::distmatrix::Config cfg;
        cfg.tile = 32;
        dipdc::modules::distmatrix::run_distributed(
            comm, comm.rank() == 0 ? d : Dataset{}, cfg);
      });
      break;
    }
    case 2:
      result = mpi::run(4, [](mpi::Comm& comm) {
        auto rng = dipdc::support::make_stream(
            4, static_cast<std::uint64_t>(comm.rank()));
        std::vector<double> local(2000);
        for (auto& v : local) v = rng.uniform();
        dipdc::modules::distsort::Config cfg;
        dipdc::modules::distsort::distributed_bucket_sort(comm, local, cfg);
      });
      break;
    case 3: {
      std::vector<dipdc::spatial::Point2> pts(2000);
      auto rng = dipdc::support::Xoshiro256(5);
      for (auto& p : pts) {
        p.x = rng.uniform(0.0, 10.0);
        p.y = rng.uniform(0.0, 10.0);
      }
      const auto queries =
          dipdc::modules::rangequery::make_query_workload(32, 10.0, 1.0, 6);
      result = mpi::run(4, [&](mpi::Comm& comm) {
        dipdc::modules::rangequery::Config cfg;
        cfg.engine = dipdc::modules::rangequery::Engine::kRTree;
        dipdc::modules::rangequery::run_distributed(comm, pts, queries, cfg);
      });
      break;
    }
    case 4: {
      const auto d =
          dipdc::dataio::generate_clusters(1000, 2, 4, 0.3, 0.0, 10.0, 7);
      result = mpi::run(4, [&](mpi::Comm& comm) {
        dipdc::modules::kmeans::Config cfg;
        cfg.k = 4;
        dipdc::modules::kmeans::distributed(
            comm, comm.rank() == 0 ? d.data : Dataset{}, cfg);
      });
      break;
    }
    default:
      break;
  }
  return result.total_stats();
}

void print_table2() {
  std::vector<mpi::CommStats> stats;
  stats.reserve(ev::kModules);
  for (int m = 0; m < ev::kModules; ++m) stats.push_back(run_module(m));

  Table t("TABLE II: MPI primitive use per module — paper marking "
          "(R/N/-) vs. measured calls of this repo's reference solutions");
  t.set_header({"MPI Primitive", "M1", "M2", "M3", "M4", "M5"});
  t.set_alignment({Align::kLeft});
  for (const auto& row : ev::primitive_usage()) {
    std::vector<std::string> cells{std::string(row.label)};
    for (int m = 0; m < ev::kModules; ++m) {
      const char marking =
          static_cast<char>(row.usage[static_cast<std::size_t>(m)]);
      const auto calls =
          ev::family_calls(row, stats[static_cast<std::size_t>(m)]);
      cells.push_back(std::string(1, marking) + "/" +
                      std::to_string(calls));
    }
    t.add_row(std::move(cells));
  }
  std::printf("%s", t.render().c_str());
  std::printf("(cells are <paper marking>/<measured call count over 4 "
              "ranks>; families group\n variants, e.g. Scatterv counts as "
              "MPI_Scatter and Probe as MPI_Get_count)\n\n");

  Table v("Verification: every R-marked primitive observed?");
  v.set_header({"Module", "verdict"});
  v.set_alignment({Align::kLeft, Align::kLeft});
  for (int m = 0; m < ev::kModules; ++m) {
    v.add_row({"Module " + std::to_string(m + 1),
               ev::required_primitives_used(
                   m, stats[static_cast<std::size_t>(m)])
                   ? "PASS"
                   : "FAIL"});
  }
  std::printf("%s\n", v.render().c_str());
}

}  // namespace

int main() {
  print_table1();
  print_table2();
  return 0;
}
