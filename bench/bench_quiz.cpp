// Reproduces the paper's evaluation artifacts:
//   Table III — student demographics,
//   Figure 2  — per-student pre/post quiz scores (ASCII bars),
//   Table IV  — quiz statistics, recomputed from the reconstructed dataset
//               and compared against the published values.
#include <cstdio>
#include <string>

#include "eval/quizdata.hpp"
#include "eval/quizstats.hpp"
#include "eval/survey.hpp"
#include "support/ascii_chart.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace ev = dipdc::eval;
using namespace dipdc::support;

namespace {

void print_table3() {
  Table t("TABLE III: demographics of the students in the course");
  t.set_header({"Program", "Number", "Detail"});
  t.set_alignment({Align::kLeft, Align::kRight, Align::kLeft});
  int total = 0;
  for (const auto& row : ev::demographics()) {
    t.add_row({std::string(row.program), std::to_string(row.count),
               std::string(row.detail)});
    total += row.count;
  }
  t.add_rule();
  t.add_row({"Total", std::to_string(total), ""});
  std::printf("%s\n", t.render().c_str());
}

void print_figure2() {
  std::printf("FIGURE 2: student quiz scores pre ('.') and post ('#') "
              "module completion\n");
  std::printf("(reconstructed dataset; '--' = excluded pair, see DESIGN.md)\n\n");
  for (int q = 0; q < ev::kQuizzes; ++q) {
    std::printf("Quiz %d (Module %d):\n", q + 1, q + 1);
    std::vector<Bar> bars;
    for (int s = 0; s < ev::kStudents; ++s) {
      const auto score = ev::quiz_score(s, q);
      const std::string label = "student " + std::to_string(s + 1);
      if (!score) {
        std::printf("%s   --\n", (label + "       ").substr(0, 11).c_str());
        continue;
      }
      bars.push_back({label + " pre ", score->pre, '.'});
      bars.push_back({label + " post", score->post, '#'});
    }
    std::printf("%s\n", bar_chart(bars, 100.0, 50).c_str());
  }
}

void add_stat(Table& t, const std::string& name, const std::string& measured,
              const std::string& paper) {
  t.add_row({name, measured, paper,
             measured == paper ? "match" : "MISMATCH"});
}

void print_table4() {
  const auto pairs = ev::all_pairs();
  const auto counts = ev::count_pairs(pairs);
  const auto inc = ev::mean_relative_change(pairs, ev::Direction::kIncrease);
  const auto dec = ev::mean_relative_change(pairs, ev::Direction::kDecrease);

  Table t("TABLE IV: statistics derived from Figure 2 (measured vs. paper)");
  t.set_header({"Statistic", "Measured", "Paper", "Verdict"});
  t.set_alignment({Align::kLeft});
  add_stat(t, "Total Pre & Post Quiz Pairs", std::to_string(counts.total),
           "42");
  add_stat(t, "Pre & Post: Equal in Score", std::to_string(counts.equal),
           "17");
  add_stat(t, "Pre & Post: Increase in Score (i)",
           std::to_string(counts.increased), "19");
  add_stat(t, "Pre & Post: Decrease in Score (d)",
           std::to_string(counts.decreased), "6");
  add_stat(t, "Mean Relative Performance Increase",
           percent(inc.relative_to_pre), "47.86%");
  add_stat(t, "Mean Relative Performance Decrease",
           percent(dec.relative_to_pre), "27.30%");
  const char* expect[ev::kQuizzes][2] = {{"88.89%", "98.15%"},
                                         {"82.22%", "88.89%"},
                                         {"69.50%", "77.78%"},
                                         {"60.71%", "67.86%"},
                                         {"80.21%", "79.17%"}};
  for (int q = 0; q < ev::kQuizzes; ++q) {
    const auto m = ev::quiz_means(pairs, q);
    add_stat(t,
             "Mean Quiz " + std::to_string(q + 1) + " Grade Pre (Post)",
             percent(m.pre / 100.0) + " (" + percent(m.post / 100.0) + ")",
             std::string(expect[q][0]) + " (" + expect[q][1] + ")");
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "Formula note: the paper writes the relative change as |a-b|/b with\n"
      "'a and b the pre and post scores'; normalizing by the post score is\n"
      "inconsistent with the published per-quiz means (see EXPERIMENTS.md),\n"
      "so Table IV above uses the conventional baseline-relative change\n"
      "|pre-post|/pre.  For reference, the literal /post reading gives:\n"
      "  increase %s, decrease %s\n\n",
      percent(inc.relative_to_post).c_str(),
      percent(dec.relative_to_post).c_str());

  const auto who = ev::students_with_decrease(pairs);
  std::printf("Students with at least one decreasing pair:");
  for (const int s : who) std::printf(" #%d", s + 1);
  std::printf("  (paper: #1, 3, 4, 7)\n");
}

}  // namespace

void print_survey() {
  std::printf("\nSurvey results (paper SIV-D):\n\n");
  Table d("Perceived difficulty vs. other graduate courses");
  d.set_header({"report", "students"});
  d.set_alignment({Align::kLeft});
  for (const auto& row : ev::difficulty_reports()) {
    d.add_row({std::string(row.level), std::to_string(row.students)});
  }
  std::printf("%s\n", d.render().c_str());

  Table v("Module votes");
  v.set_header({"question", "M1", "M2", "M3", "M4", "M5"});
  v.set_alignment({Align::kLeft});
  auto add = [&](const char* q, const ev::ModuleVotes& mv) {
    std::vector<std::string> row{q};
    for (const int x : mv.votes) row.push_back(std::to_string(x));
    v.add_row(std::move(row));
  };
  add("favorite module", ev::favorite_module_votes());
  add("least favorite", ev::least_favorite_votes());
  add("most challenging", ev::most_challenging_votes());
  std::printf("%s\n", v.render().c_str());

  std::printf("Selected free responses:\n");
  for (const auto& q : ev::quoted_responses()) {
    std::printf("  - \"%.*s\"\n", static_cast<int>(q.size()), q.data());
  }
}

int main() {
  print_table3();
  print_figure2();
  print_table4();
  print_survey();
  return 0;
}
