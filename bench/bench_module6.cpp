// Module 6 (extension) experiments: latency hiding via overlapped halo
// exchange, and communication-avoiding deep halos — the paper's future
// work item (i) ("increasing focus on communication and latency hiding").
#include <cstdio>
#include <string>

#include "minimpi/runtime.hpp"
#include "modules/stencil/module6.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m6 = dipdc::modules::stencil;
namespace pm = dipdc::perfmodel;
using namespace dipdc::support;

namespace {

m6::Result run_cfg(int ranks, const m6::Config& cfg,
                   const pm::MachineConfig& machine) {
  mpi::RuntimeOptions opts;
  opts.machine = machine;
  m6::Result out;
  mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        const auto r = m6::run_distributed(comm, cfg);
        if (comm.rank() == 0) out = r;
      },
      opts);
  return out;
}

}  // namespace

int main() {
  const int ranks = 16;
  auto machine = pm::MachineConfig::monsoon_like(4);
  machine.inter_latency = 2e-5;  // a deliberately slow interconnect

  // --- Overlap vs. serialize across problem sizes. ---
  std::printf("1-D Jacobi stencil, %d ranks on 4 nodes (inter-node latency "
              "20 us), 64 sweeps\n\n",
              ranks);
  Table t;
  t.set_header({"cells", "blocking", "overlapped", "overlap gain",
                "comm share (blocking)"});
  for (const std::size_t cells : {1u << 12, 1u << 15, 1u << 18, 1u << 21}) {
    m6::Config blocking;
    blocking.global_cells = cells;
    blocking.iterations = 64;
    blocking.exchange = m6::Exchange::kBlocking;
    m6::Config overlapped = blocking;
    overlapped.exchange = m6::Exchange::kOverlapped;
    const auto rb = run_cfg(ranks, blocking, machine);
    const auto ro = run_cfg(ranks, overlapped, machine);
    t.add_row({std::to_string(cells), seconds(rb.sim_time),
               seconds(ro.sim_time),
               fixed(rb.sim_time / ro.sim_time, 2) + "x",
               percent(rb.comm_time / (rb.comm_time + rb.compute_time))});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "(overlap pays off most where computation and communication are "
      "comparable: on\n tiny grids there is no interior work to hide the "
      "latency behind, and on huge\n grids communication is negligible "
      "anyway — the classic overlap sweet spot)\n\n");

  // --- Deep halos trade messages for redundant computation. ---
  std::printf("Communication-avoiding halos, %u cells, 64 sweeps, "
              "blocking exchange:\n\n",
              1u << 14);
  Table h;
  h.set_header({"halo width", "exchanges", "halo messages/rank",
                "sim time"});
  for (const int w : {1, 2, 4, 8}) {
    m6::Config cfg;
    cfg.global_cells = 1 << 14;
    cfg.iterations = 64;
    cfg.halo_width = w;
    const auto r = run_cfg(ranks, cfg, machine);
    h.add_row({std::to_string(w), std::to_string(64 / w),
               std::to_string(r.halo_messages), seconds(r.sim_time)});
  }
  std::printf("%s", h.render().c_str());
  std::printf("(wider halos exchange less often at the cost of slightly "
              "more computation —\n the communication-avoiding trade-off)\n");
  return 0;
}
