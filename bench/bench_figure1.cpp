// Reproduces Figure 1 — the example quiz question of Module 4:
//
//   Two MPI programs run on two identical 32-core nodes, each using 20 of
//   32 cores.  Program 1's speedup saturates (memory-bound); Program 2's
//   is near-linear (compute-bound).  Another user wants to share one of
//   the nodes: which program should they co-locate with?
//
// Program 1 here is the Module 4 R-tree range query (pointer-chased,
// memory-bound) and Program 2 the brute-force scan (compute-bound) — the
// very workloads the quiz question grew out of.  Both speedup curves are
// produced by the machine model; the co-scheduling answer is then
// demonstrated twice: with the machine model's external-load knob and with
// the slurmsim interference simulator.
#include <cstdio>
#include <vector>

#include "minimpi/runtime.hpp"
#include "modules/rangequery/module4.hpp"
#include "slurmsim/slurmsim.hpp"
#include "support/ascii_chart.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace mpi = dipdc::minimpi;
namespace m4 = dipdc::modules::rangequery;
namespace pm = dipdc::perfmodel;
namespace sl = dipdc::slurmsim;
namespace sp = dipdc::spatial;
using namespace dipdc::support;

namespace {

std::vector<sp::Point2> make_points(std::size_t n) {
  Xoshiro256 rng(100);
  std::vector<sp::Point2> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  return pts;
}

double run_at(int ranks, m4::Engine engine,
              const std::vector<sp::Point2>& points,
              const std::vector<sp::Rect>& queries, double external_load) {
  mpi::RuntimeOptions opts;
  opts.machine = pm::MachineConfig::monsoon_like(1);
  if (external_load > 0.0) {
    opts.machine.external_bw_load = {external_load};
  }
  m4::Config cfg;
  cfg.engine = engine;
  double t = 0.0;
  mpi::run(
      ranks,
      [&](mpi::Comm& comm) {
        t = m4::run_distributed(comm, points, queries, cfg).sim_time;
      },
      opts);
  return t;
}

}  // namespace

int main() {
  const auto points = make_points(20000);
  const auto queries = m4::make_query_workload(4096, 100.0, 10.0, 11);
  const std::vector<int> cores = {1, 2, 4, 8, 12, 16, 20};

  std::printf("FIGURE 1: speedup vs. cores on one 32-core node "
              "(both programs use up to 20 cores)\n\n");

  std::vector<double> t1, t2;
  for (const int c : cores) {
    t1.push_back(run_at(c, m4::Engine::kRTree, points, queries, 0.0));
    t2.push_back(run_at(c, m4::Engine::kBruteForce, points, queries, 0.0));
  }
  const auto s1 = pm::speedups(t1);
  const auto s2 = pm::speedups(t2);

  Table t;
  t.set_header({"cores", "Program 1 (R-tree) speedup",
                "Program 2 (brute force) speedup"});
  Series p1{"Program 1 (memory-bound)", {}, {}, '1'};
  Series p2{"Program 2 (compute-bound)", {}, {}, '2'};
  for (std::size_t i = 0; i < cores.size(); ++i) {
    t.add_row({std::to_string(cores[i]), fixed(s1[i], 2), fixed(s2[i], 2)});
    p1.x.push_back(cores[i]);
    p1.y.push_back(s1[i]);
    p2.x.push_back(cores[i]);
    p2.y.push_back(s2[i]);
  }
  std::printf("%s\n%s\n", t.render().c_str(),
              line_chart({p1, p2}, 60, 18).c_str());
  std::printf("Shape check: Program 1 saturates "
              "(speedup %.1f at 20 cores), Program 2 is near-linear "
              "(%.1f at 20 cores).\n\n",
              s1.back(), s2.back());

  // --- The quiz answer, via the machine model's external-load knob. ---
  std::printf("Quiz question: a memory-hungry stranger job moves onto one "
              "of your nodes.\nDegradation of each program at 20 cores when "
              "sharing the node with it:\n\n");
  Table q;
  q.set_header({"co-located with", "time alone", "time shared",
                "degradation"});
  q.set_alignment({Align::kLeft});
  const double stranger_bw = 0.45;  // fraction of node bandwidth it eats
  const double t1s =
      run_at(20, m4::Engine::kRTree, points, queries, stranger_bw);
  const double t2s =
      run_at(20, m4::Engine::kBruteForce, points, queries, stranger_bw);
  q.add_row({"Program 1 / Node 1 (memory-bound)", seconds(t1.back()),
             seconds(t1s), fixed(t1s / t1.back(), 2) + "x"});
  q.add_row({"Program 2 / Node 2 (compute-bound)", seconds(t2.back()),
             seconds(t2s), fixed(t2s / t2.back(), 2) + "x"});
  std::printf("%s", q.render().c_str());
  std::printf("=> correct answer: Program 2 / Compute Node 2 — sharing "
              "with the compute-bound\n   program minimizes degradation "
              "(paper §IV-B).\n\n");

  // --- The same lesson from the batch-scheduler simulator. ---
  std::printf("Cross-check with slurmsim ('terrible twins'):\n\n");
  auto job = [](const char* name, double bw) {
    sl::JobSpec j;
    j.name = name;
    j.nodes = 1;
    j.tasks_per_node = 16;
    j.work_seconds = 100.0;
    j.time_limit = 100.0;
    j.mem_bw_demand = bw;
    return j;
  };
  Table x;
  x.set_header({"pairing on one node", "job A slowdown", "job B slowdown"});
  x.set_alignment({Align::kLeft});
  struct Case {
    const char* label;
    double bw_a, bw_b;
  };
  for (const Case& c :
       {Case{"memory-bound + memory-bound (twins)", 0.8, 0.8},
        Case{"memory-bound + compute-bound", 0.8, 0.15},
        Case{"compute-bound + compute-bound", 0.15, 0.15}}) {
    const auto r = sl::simulate(sl::ClusterSpec{1, 32}, sl::Policy::kFifo,
                                {job("A", c.bw_a), job("B", c.bw_b)});
    x.add_row({c.label, fixed(r.jobs[0].slowdown(), 2) + "x",
               fixed(r.jobs[1].slowdown(), 2) + "x"});
  }
  std::printf("%s", x.render().c_str());
  return 0;
}
